//! The schedule-exploration gate: systematic interrupt interleaving
//! with DPOR-style pruning.
//!
//! Explores every interrupt-arrival commuting class of the campaign
//! scenario — all seven chips, the clean baseline plus `--seeds`
//! injected ones each — executing one representative per class through
//! the fleet's snapshot/restore machinery and oracle-checking it.
//! Previously-found schedules persisted under `<--corpus>/schedules.bin`
//! replay first; new findings are written back as version-2 corpus
//! records (the 64-bit schedule ID is the whole repro).
//!
//! Alongside the sweep, the planted commit-window bug demonstration
//! proves detector power: `--planted-seeds` seeded runs on the buggy
//! kernel must stay green, exploration must find the bug, and the
//! minimized schedule must be harmless on the correct kernel.
//!
//! With `--check`, exits non-zero on any finding, a replayed schedule
//! still failing, a pruning ratio under the `min_explore_prune_ratio`
//! floor in `ci/bench_baseline.json`, or lost detector power. With
//! `--json [path]`, writes `BENCH_explore.json`. `--budget-ms N` bounds
//! fleet wall clock (late units report truncated, and the gate refuses
//! to pass on truncation alone).

use std::path::Path;
use std::process::ExitCode;

use tt_bench::explore::{
    check, explore_json, explore_records, planted_demo, render, replay_schedule_records,
    run_explore_fleet, schedule_corpus,
};
use tt_hw::platform::{ALL_CHIPS, NRF52840DK};
use tt_kernel::corpus::write_corpus;
use tt_kernel::pool;

fn arg_num<T: std::str::FromStr>(args: &[String], name: &str) -> Option<T> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let do_check = args.iter().any(|a| a == "--check");
    let seeds: u64 = arg_num(&args, "--seeds").unwrap_or(2);
    let planted_seeds: u64 = arg_num(&args, "--planted-seeds").unwrap_or(25);
    let cap: Option<usize> = arg_num(&args, "--cap");
    let budget_ms: Option<f64> = arg_num(&args, "--budget-ms");
    let threads: usize = arg_num(&args, "--threads").unwrap_or_else(pool::default_threads);
    let corpus_dir = args
        .iter()
        .position(|a| a == "--corpus")
        .and_then(|i| args.get(i + 1))
        .filter(|p| !p.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "ci/corpus".into());
    let json_path = args.iter().position(|a| a == "--json").map(|i| {
        args.get(i + 1)
            .filter(|p| !p.starts_with("--"))
            .cloned()
            .unwrap_or_else(|| "BENCH_explore.json".into())
    });

    // Replay the persisted schedule corpus first — a previously-failing
    // schedule reporting in the opening seconds beats rediscovering it.
    let corpus = match schedule_corpus(Path::new(&corpus_dir)) {
        Ok(records) => records,
        Err(e) => {
            eprintln!("corrupt schedule corpus under {corpus_dir}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let replayed = replay_schedule_records(&corpus);
    if !corpus.is_empty() {
        println!(
            "schedule corpus: {} record(s) replayed, {} still failing",
            corpus.len(),
            replayed.len()
        );
    }

    let fleet = run_explore_fleet(&ALL_CHIPS, seeds, cap, threads, budget_ms);
    let demo = planted_demo(&NRF52840DK, planted_seeds);
    print!("{}", render(&fleet, &demo));
    println!("wall clock: {:.0} ms", fleet.wall_ms);

    // Persist new campaign findings (the planted demo is a self-check,
    // not a campaign result — its schedules stay out of the corpus).
    let records = explore_records(&fleet.outcomes);
    if !records.is_empty() {
        let path = Path::new(&corpus_dir).join("schedules.bin");
        match write_corpus(&path, &records) {
            Ok(()) => println!(
                "wrote {} schedule record(s) to {}",
                records.len(),
                path.display()
            ),
            Err(e) => eprintln!("failed to write schedule corpus {}: {e}", path.display()),
        }
    }

    if let Some(path) = json_path {
        let doc = explore_json(&fleet, &demo);
        if let Err(e) = std::fs::write(&path, &doc) {
            eprintln!("failed to write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote {path}");
    }

    if do_check {
        let baseline = std::fs::read_to_string("ci/bench_baseline.json").unwrap_or_default();
        match check(&fleet, &demo, &replayed, &baseline) {
            Ok(notes) => {
                for n in notes {
                    println!("gate: {n}");
                }
            }
            Err(failures) => {
                for f in &failures {
                    eprintln!("gate FAILED: {f}");
                }
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
