//! Fleet campaign gate: snapshot/restore mass fault injection.
//!
//! Runs a `--runs N` (default 1000) fleet campaign across all chips on
//! the snapshot/restore path — boot once per `(chip, cache-mode)` per
//! worker, dirty-page restore per seed — with the bystander oracle and
//! contract checks enabled on every run, and prints per-chip tallies,
//! runs/sec and the measured restore-vs-boot reset cost.
//!
//! With `--json [path]`, writes `BENCH_throughput.json` (experiment
//! `e_fleet`, including `fleet_runs_per_sec` and `restore_speedup`).
//! With `--check [baseline]` (default `ci/bench_baseline.json`), exits
//! non-zero if any restored run is not byte-identical to its fresh-boot
//! twin, if any campaign run fails the oracle, or if the restore-vs-boot
//! speedup misses the baseline's `min_restore_speedup` floor.
//!
//! Failing runs persist as 32-byte corpus records under `--corpus`
//! (default `ci/corpus/`), and the first few failing seeds are shrunk to
//! 1-minimal injection schedules for the report.

use std::path::Path;
use std::process::ExitCode;

use tt_bench::fleet::{
    check, equivalence_failures, failing_records, measure_reset_cost, render, render_json,
    run_fleet, shrink_failures,
};
use tt_bench::throughput::host_cores;
use tt_kernel::corpus::write_corpus;
use tt_kernel::pool;

/// Reset-cost probe iterations per chip.
const RESET_COST_ITERS: u32 = 50;
/// Maximum failing seeds shrunk for the report.
const SHRINK_LIMIT: usize = 10;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let runs: u64 = args
        .iter()
        .position(|a| a == "--runs")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(1000);
    let json_path = args.iter().position(|a| a == "--json").map(|i| {
        args.get(i + 1)
            .filter(|p| !p.starts_with("--"))
            .cloned()
            .unwrap_or_else(|| "BENCH_throughput.json".into())
    });
    let check_path = args.iter().position(|a| a == "--check").map(|i| {
        args.get(i + 1)
            .filter(|p| !p.starts_with("--"))
            .cloned()
            .unwrap_or_else(|| "ci/bench_baseline.json".into())
    });
    let corpus_dir = args
        .iter()
        .position(|a| a == "--corpus")
        .and_then(|i| args.get(i + 1))
        .filter(|p| !p.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "ci/corpus".into());

    let threads = pool::default_threads();
    let cores = host_cores();
    println!("Fleet campaign: --runs {runs} on {threads} worker(s) ({cores} core(s))");

    println!("restore-equivalence gate: replaying fresh-boot vs restored runs...");
    let equivalence = equivalence_failures();
    for f in &equivalence {
        eprintln!("EQUIVALENCE FAILED: {f}");
    }

    let result = run_fleet(runs, threads);
    let cost = measure_reset_cost(RESET_COST_ITERS);
    print!("{}", render(&result, &cost));

    let failing = failing_records(&result.outcomes);
    if !failing.is_empty() {
        let path = Path::new(&corpus_dir).join("failures.bin");
        match write_corpus(&path, &failing) {
            Ok(()) => println!(
                "wrote {} failing record(s) to {}",
                failing.len(),
                path.display()
            ),
            Err(e) => eprintln!("failed to write corpus {}: {e}", path.display()),
        }
        for line in shrink_failures(&result.outcomes, SHRINK_LIMIT) {
            println!("shrunk: {line}");
        }
    }

    if let Some(path) = json_path {
        let doc = render_json(&result, &cost, &equivalence, cores);
        if let Err(e) = std::fs::write(&path, &doc) {
            eprintln!("failed to write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote {path}");
    }

    if let Some(path) = check_path {
        let baseline = match std::fs::read_to_string(&path) {
            Ok(doc) => doc,
            Err(e) => {
                eprintln!("failed to read baseline {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        match check(&result, &cost, &equivalence, &baseline) {
            Ok(notes) => {
                for note in notes {
                    println!("check: {note}");
                }
            }
            Err(failures) => {
                for f in failures {
                    eprintln!("FLEET GATE FAILED: {f}");
                }
                return ExitCode::FAILURE;
            }
        }
    } else if !equivalence.is_empty() {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
