//! Fleet campaign gate: snapshot/restore mass fault injection.
//!
//! Runs a `--runs N` (default 1000) fleet campaign across all chips on
//! the snapshot/restore path — boot once per `(chip, cache-mode)` per
//! worker, dirty-page restore per seed, mid-run (post-first-tick)
//! resume for every plan that doesn't fire inside tick 1 — with the
//! bystander oracle and contract checks enabled on every run, and
//! prints per-chip tallies, runs/sec and the measured reset costs.
//!
//! Seeds recorded in the failure corpus (`<--corpus>/failures.bin`)
//! from a previous campaign are scheduled *first*, so known-bad inputs
//! report in the opening seconds of a million-run job.
//!
//! With `--profile`, prints the per-phase (restore/run/collect/
//! validate) p50/p99/mean table and capture amortization. The same
//! breakdown always lands in the `--json` document.
//!
//! With `--json [path]`, writes `BENCH_throughput.json` (experiment
//! `e_fleet`, including `fleet_runs_per_sec`, `restore_speedup`,
//! `midrun_restore_speedup` and the `phases` object).
//! With `--check [baseline]` (default `ci/bench_baseline.json`), exits
//! non-zero if any restored run is not byte-identical to its fresh-boot
//! twin, if any campaign run fails the oracle, or if a measured speedup
//! misses its baseline floor (`min_restore_speedup`,
//! `min_midrun_restore_speedup`, or the serial throughput floor
//! `fleet_runs_per_sec_prev` x `min_fleet_speedup`).
//! With `--budget-ms N`, exits non-zero if the campaign wall-clock
//! exceeded `N` milliseconds — the CI knob that keeps raising `--runs`
//! toward 10^6 honest.
//!
//! Failing runs persist as 32-byte corpus records under `--corpus`
//! (default `ci/corpus/`), and the first few failing seeds are shrunk to
//! 1-minimal injection schedules for the report.

use std::path::Path;
use std::process::ExitCode;

use tt_bench::fleet::{
    check, equivalence_failures, failing_records, measure_reset_cost, priority_from_corpus,
    profile, render, render_json, render_profile, run_fleet_prioritized, shrink_failures,
};
use tt_bench::throughput::host_cores;
use tt_kernel::corpus::write_corpus;
use tt_kernel::pool;

/// Reset-cost probe iterations per chip.
const RESET_COST_ITERS: u32 = 50;
/// Maximum failing seeds shrunk for the report.
const SHRINK_LIMIT: usize = 10;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let runs: u64 = args
        .iter()
        .position(|a| a == "--runs")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(1000);
    let json_path = args.iter().position(|a| a == "--json").map(|i| {
        args.get(i + 1)
            .filter(|p| !p.starts_with("--"))
            .cloned()
            .unwrap_or_else(|| "BENCH_throughput.json".into())
    });
    let check_path = args.iter().position(|a| a == "--check").map(|i| {
        args.get(i + 1)
            .filter(|p| !p.starts_with("--"))
            .cloned()
            .unwrap_or_else(|| "ci/bench_baseline.json".into())
    });
    let corpus_dir = args
        .iter()
        .position(|a| a == "--corpus")
        .and_then(|i| args.get(i + 1))
        .filter(|p| !p.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "ci/corpus".into());
    let want_profile = args.iter().any(|a| a == "--profile");
    let budget_ms: Option<f64> = args
        .iter()
        .position(|a| a == "--budget-ms")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok());

    let threads = pool::default_threads();
    let cores = host_cores();
    println!("Fleet campaign: --runs {runs} on {threads} worker(s) ({cores} core(s))");

    println!("restore-equivalence gate: replaying fresh-boot vs restored runs...");
    let equivalence = equivalence_failures();
    for f in &equivalence {
        eprintln!("EQUIVALENCE FAILED: {f}");
    }

    // Corpus-guided scheduling: front the units a previous campaign
    // recorded as failing.
    let failures_path = Path::new(&corpus_dir).join("failures.bin");
    let priority = match priority_from_corpus(&failures_path) {
        Ok(units) => {
            if !units.is_empty() {
                println!(
                    "corpus-guided scheduling: {} previously failing unit(s) run first",
                    units.len()
                );
            }
            units
        }
        Err(e) => {
            eprintln!("corrupt corpus {}: {e}", failures_path.display());
            return ExitCode::FAILURE;
        }
    };

    let result = run_fleet_prioritized(runs, threads, &priority);
    let cost = measure_reset_cost(RESET_COST_ITERS);
    let prof = profile(&result);
    print!("{}", render(&result, &cost));
    if want_profile {
        print!("{}", render_profile(&result, &prof));
    }

    let failing = failing_records(&result.outcomes);
    if !failing.is_empty() {
        match write_corpus(&failures_path, &failing) {
            Ok(()) => println!(
                "wrote {} failing record(s) to {}",
                failing.len(),
                failures_path.display()
            ),
            Err(e) => eprintln!("failed to write corpus {}: {e}", failures_path.display()),
        }
        for line in shrink_failures(&result.outcomes, SHRINK_LIMIT) {
            println!("shrunk: {line}");
        }
    }

    if let Some(path) = json_path {
        let doc = render_json(&result, &cost, &prof, &equivalence, cores);
        if let Err(e) = std::fs::write(&path, &doc) {
            eprintln!("failed to write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote {path}");
    }

    let mut failed = false;
    if let Some(budget) = budget_ms {
        if result.wall_ms > budget {
            eprintln!(
                "FLEET GATE FAILED: campaign took {:.0} ms, over the {budget:.0} ms budget",
                result.wall_ms
            );
            failed = true;
        } else {
            println!(
                "check: wall-clock {:.0} ms within the {budget:.0} ms budget",
                result.wall_ms
            );
        }
    }

    if let Some(path) = check_path {
        let baseline = match std::fs::read_to_string(&path) {
            Ok(doc) => doc,
            Err(e) => {
                eprintln!("failed to read baseline {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        match check(&result, &cost, &equivalence, &baseline) {
            Ok(notes) => {
                for note in notes {
                    println!("check: {note}");
                }
            }
            Err(failures) => {
                for f in failures {
                    eprintln!("FLEET GATE FAILED: {f}");
                }
                failed = true;
            }
        }
    } else if !equivalence.is_empty() {
        failed = true;
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
