//! Replays a single release test on two kernel flavors and dumps both
//! event traces plus the first divergence — the debugging companion to
//! `e61_differential`.
//!
//! Usage:
//!
//! ```text
//! trace_diff <test-name> [--chip <name>] [--buggy] [--full] [--dump]
//! ```
//!
//! * default: compares Tock (`Legacy(Fixed)`) vs TickTock (`Granular`)
//!   under the *observable* trace scope (register values are
//!   flavor-dependent by design and excluded).
//! * `--buggy`: compares `Legacy(Buggy)` vs `Legacy(Fixed)` — same
//!   backend, so the *full* scope applies and a register-value divergence
//!   pinpoints the injected allocator bug.
//! * `--full`: force full scope for the default comparison.
//! * `--dump`: print both complete traces, not just the divergence.
//! * `--chip`: one of the `tt_hw::platform` profiles (default
//!   `nrf52840dk`).

use std::process::ExitCode;

use tt_hw::platform::{ChipProfile, ALL_CHIPS, NRF52840DK};
use tt_kernel::apps::release_tests;
use tt_kernel::differential::run_one_on;
use tt_kernel::process::Flavor;
use tt_kernel::trace::{diff_traces, render_divergence, render_trace, TraceScope};
use tt_legacy::BugVariant;

fn find_chip(name: &str) -> Option<ChipProfile> {
    ALL_CHIPS.into_iter().find(|c| c.name == name)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut test_name = None;
    let mut chip = NRF52840DK;
    let mut buggy = false;
    let mut full = false;
    let mut dump = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--chip" => match it.next().and_then(|n| find_chip(n)) {
                Some(c) => chip = c,
                None => {
                    eprintln!("unknown chip; available: {:?}", ALL_CHIPS.map(|c| c.name));
                    return ExitCode::FAILURE;
                }
            },
            "--buggy" => buggy = true,
            "--full" => full = true,
            "--dump" => dump = true,
            name => test_name = Some(name.to_string()),
        }
    }
    let tests = release_tests();
    let test = match test_name
        .as_deref()
        .and_then(|n| tests.iter().find(|t| t.spec.name == n))
    {
        Some(t) => t,
        None => {
            eprintln!("usage: trace_diff <test-name> [--chip <name>] [--buggy] [--full] [--dump]");
            eprintln!(
                "release tests: {:?}",
                tests.iter().map(|t| t.spec.name).collect::<Vec<_>>()
            );
            return ExitCode::FAILURE;
        }
    };

    let ((left_name, left_flavor), (right_name, right_flavor), scope) = if buggy {
        (
            ("buggy", Flavor::Legacy(BugVariant::Buggy)),
            ("fixed", Flavor::Legacy(BugVariant::Fixed)),
            TraceScope::Full,
        )
    } else {
        (
            ("tock", Flavor::Legacy(BugVariant::Fixed)),
            ("ticktock", Flavor::Granular),
            if full {
                TraceScope::Full
            } else {
                TraceScope::Observable
            },
        )
    };

    println!(
        "replaying `{}` on {} ({left_name} vs {right_name}, {scope:?} scope)",
        test.spec.name, chip.name
    );
    let left = run_one_on(test, left_flavor, &chip);
    let right = run_one_on(test, right_flavor, &chip);
    println!(
        "{left_name:>9}: {} events, console {:?}",
        left.trace.events.len(),
        left.console
    );
    println!(
        "{right_name:>9}: {} events, console {:?}",
        right.trace.events.len(),
        right.console
    );
    if dump {
        println!("\n===== {left_name} trace =====");
        print!("{}", render_trace(&left.trace));
        println!("\n===== {right_name} trace =====");
        print!("{}", render_trace(&right.trace));
    }
    match diff_traces(&left.trace, &right.trace, scope) {
        Some(d) => {
            println!();
            print!("{}", render_divergence(&d, left_name, right_name));
            ExitCode::FAILURE
        }
        None => {
            println!("\ntraces are equivalent under {scope:?} scope");
            ExitCode::SUCCESS
        }
    }
}
