//! Simulation throughput: runs/sec for the two heavy workloads at a
//! ladder of worker counts.
//!
//! The throughput engine drives the same code paths CI gates on — the
//! fault-injection campaign and the §6.1 differential suite — through
//! [`tt_kernel::pool`] at 1, N/2 and N workers (N =
//! [`pool::default_threads`]) and reports kernel runs per second at each
//! rung. Because every run's mutable state is thread-local, the reports
//! produced at any rung must be byte-identical to the serial ones;
//! [`check`] asserts exactly that, making the parallelism itself a gated
//! artifact rather than a trusted optimisation.
//!
//! The speedup floor in `ci/bench_baseline.json`
//! (`min_parallel_speedup`) only applies when the host actually has
//! cores to scale onto: on a 1-core container the ladder still runs (the
//! determinism half of the gate is host-independent) but the floor is
//! skipped, and on small hosts it is capped below the core count.

use std::time::Instant;

use crate::{json, reports};
use tt_hw::platform::ALL_CHIPS;
use tt_kernel::campaign::{render_report, run_campaign_on};
use tt_kernel::differential::run_release_suite_all_chips_with_threads;
use tt_kernel::pool;

/// One rung of the thread ladder: wall-clock and run counts for both
/// workloads at a fixed worker count.
#[derive(Debug, Clone)]
pub struct Sample {
    /// Worker count this rung ran with.
    pub threads: usize,
    /// Injected campaign runs executed (seeds × 2 cache modes × chips).
    pub campaign_runs: u64,
    /// Campaign wall-clock, milliseconds.
    pub campaign_ms: f64,
    /// Differential kernel boots executed (tests × 2 kernels × chips).
    pub diff_runs: u64,
    /// Differential suite wall-clock, milliseconds.
    pub diff_ms: f64,
}

impl Sample {
    /// Campaign throughput in injected runs per second.
    pub fn campaign_runs_per_sec(&self) -> f64 {
        self.campaign_runs as f64 / (self.campaign_ms / 1e3)
    }

    /// Differential throughput in kernel boots per second.
    pub fn diff_runs_per_sec(&self) -> f64 {
        self.diff_runs as f64 / (self.diff_ms / 1e3)
    }
}

/// A measured rung plus the rendered artifacts it produced, kept for the
/// byte-identity check. Wall-clock fields inside the artifacts are
/// pinned to 0 so the bytes only reflect simulation results.
#[derive(Debug, Clone)]
pub struct LadderEntry {
    /// Timing for this rung.
    pub sample: Sample,
    /// Campaign text report + JSON document (wall pinned).
    pub campaign_artifact: String,
    /// Differential all-chips JSON document (wall pinned).
    pub diff_artifact: String,
}

/// The worker counts to measure: 1, N/2 and N, deduplicated and sorted
/// (so a 1-core host measures just `[1]`).
pub fn thread_ladder(max_threads: usize) -> Vec<usize> {
    let mut ladder = vec![1, max_threads / 2, max_threads];
    ladder.retain(|&t| t >= 1);
    ladder.sort_unstable();
    ladder.dedup();
    ladder
}

/// Measures one rung: campaign at `seeds` seeds per chip and the
/// differential suite, both across all chips at `threads` workers.
pub fn measure(seeds: u64, threads: usize) -> LadderEntry {
    let t0 = Instant::now();
    let campaign = run_campaign_on(&ALL_CHIPS, seeds, threads);
    let campaign_ms = t0.elapsed().as_secs_f64() * 1e3;

    let t1 = Instant::now();
    let per_chip = run_release_suite_all_chips_with_threads(threads);
    let diff_ms = t1.elapsed().as_secs_f64() * 1e3;

    let campaign_runs = campaign.iter().map(|r| r.runs * 2).sum::<u64>();
    let diff_runs = per_chip
        .iter()
        .map(|(_, results)| results.len() as u64 * 2)
        .sum::<u64>();

    let mut campaign_artifact = render_report(&campaign, seeds);
    campaign_artifact.push_str(&reports::campaign_json(&campaign, seeds, 0.0));
    let diff_artifact = reports::e61_json(&per_chip, 0.0);

    LadderEntry {
        sample: Sample {
            threads,
            campaign_runs,
            campaign_ms,
            diff_runs,
            diff_ms,
        },
        campaign_artifact,
        diff_artifact,
    }
}

/// Runs the full ladder for [`pool::default_threads`] workers.
pub fn run_ladder(seeds: u64) -> Vec<LadderEntry> {
    thread_ladder(pool::default_threads())
        .into_iter()
        .map(|threads| measure(seeds, threads))
        .collect()
}

/// Renders the human-readable throughput table.
pub fn render(entries: &[LadderEntry]) -> String {
    let base = &entries[0].sample;
    let mut out = String::new();
    out.push_str(&format!(
        "{:<8} {:>16} {:>9} {:>16} {:>9}\n",
        "threads", "campaign runs/s", "speedup", "diff runs/s", "speedup"
    ));
    for e in entries {
        let s = &e.sample;
        out.push_str(&format!(
            "{:<8} {:>16.1} {:>8.2}x {:>16.1} {:>8.2}x\n",
            s.threads,
            s.campaign_runs_per_sec(),
            s.campaign_runs_per_sec() / base.campaign_runs_per_sec(),
            s.diff_runs_per_sec(),
            s.diff_runs_per_sec() / base.diff_runs_per_sec(),
        ));
    }
    out
}

/// Renders the `BENCH_throughput.json` document.
pub fn render_json(entries: &[LadderEntry], seeds: u64, cores: usize) -> String {
    let deterministic = entries.iter().all(|e| artifacts_match(e, &entries[0]));
    let base = &entries[0].sample;
    let mut doc = String::new();
    doc.push_str("{\n  \"experiment\": \"e_throughput\",\n");
    doc.push_str(&format!("  \"seeds_per_chip\": {seeds},\n"));
    doc.push_str(&format!("  \"cores\": {cores},\n"));
    doc.push_str(&format!(
        "  \"max_threads\": {},\n",
        entries.last().map(|e| e.sample.threads).unwrap_or(1)
    ));
    doc.push_str(&format!("  \"deterministic\": {deterministic},\n"));
    doc.push_str("  \"points\": [\n");
    for (i, e) in entries.iter().enumerate() {
        let s = &e.sample;
        doc.push_str(&format!(
            "    {{\"threads\": {}, \"campaign_runs\": {}, \"campaign_ms\": {}, \
             \"campaign_runs_per_sec\": {}, \"campaign_speedup\": {}, \
             \"diff_runs\": {}, \"diff_ms\": {}, \"diff_runs_per_sec\": {}, \
             \"diff_speedup\": {}}}{}\n",
            s.threads,
            s.campaign_runs,
            json::num(s.campaign_ms),
            json::num(s.campaign_runs_per_sec()),
            json::num(s.campaign_runs_per_sec() / base.campaign_runs_per_sec()),
            s.diff_runs,
            json::num(s.diff_ms),
            json::num(s.diff_runs_per_sec()),
            json::num(s.diff_runs_per_sec() / base.diff_runs_per_sec()),
            if i + 1 < entries.len() { "," } else { "" }
        ));
    }
    doc.push_str("  ]\n}\n");
    doc
}

fn artifacts_match(a: &LadderEntry, b: &LadderEntry) -> bool {
    a.campaign_artifact == b.campaign_artifact && a.diff_artifact == b.diff_artifact
}

/// The CI gate: every rung's artifacts must be byte-identical to the
/// serial rung's, and — when the host has cores to use — the fastest
/// rung must clear the baseline's `min_parallel_speedup` (capped at
/// 0.75 × cores so small CI hosts are not asked for speedups their
/// hardware cannot produce). Returns the list of failures.
pub fn check(
    entries: &[LadderEntry],
    baseline: &str,
    cores: usize,
) -> Result<Vec<String>, Vec<String>> {
    let mut failures = Vec::new();
    let mut notes = Vec::new();
    let serial = &entries[0];
    for e in &entries[1..] {
        if e.campaign_artifact != serial.campaign_artifact {
            failures.push(format!(
                "campaign report at {} threads differs from serial ({} vs {} bytes)",
                e.sample.threads,
                e.campaign_artifact.len(),
                serial.campaign_artifact.len()
            ));
        }
        if e.diff_artifact != serial.diff_artifact {
            failures.push(format!(
                "differential report at {} threads differs from serial ({} vs {} bytes)",
                e.sample.threads,
                e.diff_artifact.len(),
                serial.diff_artifact.len()
            ));
        }
    }
    notes.push(format!(
        "determinism: {} rung(s) byte-identical to serial",
        entries.len() - 1
    ));

    let floor = json::read_number(baseline, "min_parallel_speedup");
    let max_threads = entries.last().map(|e| e.sample.threads).unwrap_or(1);
    match floor {
        Some(floor) if cores > 1 && max_threads > 1 => {
            let effective = floor.min(cores as f64 * 0.75);
            let best = entries
                .iter()
                .map(|e| e.sample.campaign_runs_per_sec())
                .fold(f64::NEG_INFINITY, f64::max);
            let speedup = best / serial.sample.campaign_runs_per_sec();
            if speedup < effective {
                failures.push(format!(
                    "campaign parallel speedup {speedup:.2}x below floor {effective:.2}x \
                     (baseline {floor:.2}x, {cores} cores)"
                ));
            } else {
                notes.push(format!(
                    "speedup: campaign {speedup:.2}x >= floor {effective:.2}x"
                ));
            }
        }
        Some(_) => notes.push(format!(
            "speedup floor skipped ({cores} core(s), max {max_threads} thread(s))"
        )),
        None => notes.push("baseline has no min_parallel_speedup; floor skipped".into()),
    }

    if failures.is_empty() {
        Ok(notes)
    } else {
        Err(failures)
    }
}

/// Host core count as reported by the OS (1 when undetectable).
pub fn host_cores() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_ladder_dedups_and_sorts() {
        assert_eq!(thread_ladder(1), vec![1]);
        assert_eq!(thread_ladder(2), vec![1, 2]);
        assert_eq!(thread_ladder(8), vec![1, 4, 8]);
    }

    fn fake_entry(threads: usize, campaign_ms: f64, artifact: &str) -> LadderEntry {
        LadderEntry {
            sample: Sample {
                threads,
                campaign_runs: 100,
                campaign_ms,
                diff_runs: 100,
                diff_ms: campaign_ms,
            },
            campaign_artifact: artifact.into(),
            diff_artifact: artifact.into(),
        }
    }

    #[test]
    fn check_fails_on_artifact_mismatch() {
        let entries = vec![fake_entry(1, 100.0, "a"), fake_entry(8, 20.0, "b")];
        let failures = check(&entries, "{}", 8).unwrap_err();
        assert_eq!(failures.len(), 2, "{failures:?}");
    }

    #[test]
    fn check_enforces_speedup_floor_only_with_cores() {
        let entries = vec![fake_entry(1, 100.0, "a"), fake_entry(8, 90.0, "a")];
        let baseline = "{\"min_parallel_speedup\": 3.0}";
        // 8 cores: 1.11x speedup misses the 3x floor.
        assert!(check(&entries, baseline, 8).is_err());
        // 1 core: floor is skipped, determinism still checked.
        assert!(check(&entries, baseline, 1).is_ok());
        // 2 cores: floor capped at 1.5x, still missed at 1.11x.
        assert!(check(&entries, baseline, 2).is_err());
    }

    #[test]
    fn check_passes_a_clean_ladder() {
        let entries = vec![fake_entry(1, 100.0, "a"), fake_entry(8, 25.0, "a")];
        let baseline = "{\"min_parallel_speedup\": 3.0}";
        let notes = check(&entries, baseline, 8).unwrap();
        assert!(notes.iter().any(|n| n.contains("speedup")), "{notes:?}");
    }

    #[test]
    fn render_json_is_readable_back() {
        let entries = vec![fake_entry(1, 100.0, "a"), fake_entry(8, 25.0, "a")];
        let doc = render_json(&entries, 5, 8);
        assert_eq!(json::read_number(&doc, "seeds_per_chip"), Some(5.0));
        assert_eq!(json::read_number(&doc, "cores"), Some(8.0));
        assert_eq!(json::read_number(&doc, "max_threads"), Some(8.0));
        assert!(doc.contains("\"deterministic\": true"));
    }

    #[test]
    fn measure_produces_consistent_counts() {
        let e = measure(1, 1);
        // 7 chips × 1 seed × 2 cache modes.
        assert_eq!(e.sample.campaign_runs, 14);
        // 7 chips × 21 tests × 2 kernels.
        assert_eq!(e.sample.diff_runs, 294);
        assert!(e.campaign_artifact.contains("e_fault_campaign"));
        assert!(e.diff_artifact.contains("e61_differential"));
    }
}
