//! Figure 11: average CPU cycles for process tasks, Tock vs TickTock.
//!
//! Methodology mirrors §6.2: the six key process-abstraction methods are
//! instrumented with a cycle counter; both kernels run the 21 release
//! tests plus memory-stress workloads; the table reports per-method means
//! over three runs and the percentage difference.

use std::collections::BTreeMap;
use tt_hw::cycles::{self, CycleStats};
use tt_kernel::apps::release_tests;
use tt_kernel::differential::run_one;
use tt_kernel::loader::flash_app;
use tt_kernel::pool;
use tt_kernel::process::Flavor;
use tt_kernel::Kernel;
use tt_legacy::BugVariant;

/// The six methods of Fig. 11, in the paper's row order.
pub const METHODS: [&str; 6] = [
    "allocate_grant",
    "brk",
    "build_readonly_buffer",
    "build_readwrite_buffer",
    "create",
    "setup_mpu",
];

/// A memory-stress workload: repeated brk/sbrk traffic, grant churn and
/// buffer validation ("new benchmarks designed to stress the memory
/// allocating code", §6.2).
pub fn stress_workload(flavor: Flavor) {
    let mut kernel = Kernel::boot(flavor, &tt_hw::platform::NRF52840DK);
    let image = flash_app(&mut kernel.mem, 0x0004_0000, "stress", 0x1000, 4096, 2048).unwrap();
    let pid = kernel.load_process(&image).unwrap();
    kernel.processes[pid].setup_mpu();
    let ms = kernel.processes[pid].memory_start();
    for round in 0..24usize {
        let delta = if round % 2 == 0 { 256 } else { -192 };
        let _ = kernel.sys_sbrk(pid, delta);
        let _ = kernel.sys_allow_rw(pid, ms + 64 + (round % 4) * 32, 64);
        let _ = kernel.sys_allow_ro(pid, ms + 64, 32);
        if round % 6 == 0 {
            let _ = kernel.processes[pid].allocate_grant(100 + round, 64);
        }
    }
}

/// Runs the 21 release tests plus the stress workload under cycle
/// recording and returns per-method statistics, fanned over the
/// work-stealing pool sized by [`pool::default_threads`].
pub fn collect(flavor: Flavor, runs: usize) -> BTreeMap<&'static str, CycleStats> {
    collect_with_threads(flavor, runs, pool::default_threads())
}

/// [`collect`] with an explicit worker count (1 = serial). The unit of
/// work is one release test (or the stress workload) of one run; each
/// unit records its own method spans and the per-unit record lists merge
/// in unit order, so the resulting statistics — and the Fig. 11 cycle
/// numbers derived from them — are identical at any thread count.
pub fn collect_with_threads(
    flavor: Flavor,
    runs: usize,
    threads: usize,
) -> BTreeMap<&'static str, CycleStats> {
    let tests = release_tests();
    // `Some(test)` units in test order, then the stress workload, per run
    // — the serial execution order.
    let mut units: Vec<Option<usize>> = Vec::with_capacity(runs * (tests.len() + 1));
    for _ in 0..runs {
        units.extend((0..tests.len()).map(Some));
        units.push(None);
    }
    // The commit-cache flag is thread-local: propagate the caller's mode
    // (e.g. a `with_disabled` scope around this call) into the workers.
    let cache_on = tt_hw::commit_cache::enabled();
    let tests = &tests;
    let per_unit = pool::run_indexed(&units, threads, |_, &unit| {
        let prev_cache = tt_hw::commit_cache::set_enabled(cache_on);
        cycles::reset();
        let prev = cycles::set_recording(true);
        match unit {
            Some(t) => {
                let _ = run_one(&tests[t], flavor);
            }
            None => stress_workload(flavor),
        }
        cycles::set_recording(prev);
        tt_hw::commit_cache::set_enabled(prev_cache);
        cycles::take_method_records()
    });
    let mut stats: BTreeMap<&'static str, CycleStats> = BTreeMap::new();
    for records in per_unit {
        for (name, span) in records {
            stats.entry(name).or_default().record(span);
        }
    }
    stats
}

/// One row of the rendered Fig. 11 table.
#[derive(Debug, Clone)]
pub struct Fig11Row {
    /// Method name.
    pub method: &'static str,
    /// Mean cycles on TickTock.
    pub ticktock: f64,
    /// Mean cycles on Tock.
    pub tock: f64,
}

impl Fig11Row {
    /// Percentage difference (TickTock relative to Tock).
    pub fn pct(&self) -> f64 {
        (self.ticktock - self.tock) / self.tock * 100.0
    }
}

/// Collects both kernels and builds the Fig. 11 rows.
pub fn run(runs: usize) -> Vec<Fig11Row> {
    let tock = collect(Flavor::Legacy(BugVariant::Fixed), runs);
    let ticktock = collect(Flavor::Granular, runs);
    METHODS
        .iter()
        .filter_map(|m| {
            let t = tock.get(m)?;
            let tt = ticktock.get(m)?;
            Some(Fig11Row {
                method: m,
                ticktock: tt.mean(),
                tock: t.mean(),
            })
        })
        .collect()
}

/// Renders the Fig. 11 table.
pub fn render(rows: &[Fig11Row]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<26} {:>12} {:>12} {:>10}\n",
        "Method", "TickTock", "Tock", "Pct. Diff"
    ));
    for row in rows {
        out.push_str(&format!(
            "{:<26} {:>12.2} {:>12.2} {:>9.2}%\n",
            row.method,
            row.ticktock,
            row.tock,
            row.pct()
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_six_methods_are_exercised_by_the_workload() {
        let rows = run(1);
        let names: Vec<&str> = rows.iter().map(|r| r.method).collect();
        assert_eq!(names, METHODS.to_vec(), "missing methods: {names:?}");
    }

    #[test]
    fn fig11_shape_holds() {
        // The paper's headline comparisons (§6.2): TickTock wins big on
        // allocate_grant (-50%) and brk (-22%), wins on both buffer
        // builds, is within noise on create, and pays a small setup_mpu
        // regression (+8%).
        let rows = run(3);
        let get = |m: &str| rows.iter().find(|r| r.method == m).unwrap();
        let grant = get("allocate_grant");
        assert!(
            grant.pct() < -30.0,
            "allocate_grant should be much cheaper: {:+.1}%",
            grant.pct()
        );
        let brk = get("brk");
        assert!(
            brk.pct() < -10.0,
            "brk should be cheaper: {:+.1}%",
            brk.pct()
        );
        let ro = get("build_readonly_buffer");
        assert!(ro.pct() < 0.0, "ro buffer: {:+.1}%", ro.pct());
        let rw = get("build_readwrite_buffer");
        assert!(rw.pct() < 0.0, "rw buffer: {:+.1}%", rw.pct());
        let create = get("create");
        assert!(
            create.pct().abs() < 10.0,
            "create should be near parity: {:+.1}%",
            create.pct()
        );
        let setup = get("setup_mpu");
        // Pre-cache this was the paper's small +8% regression. With the
        // PR 2 commit cache, most granular switch-ins are hits (a single
        // MPU_CTRL write), while legacy commits carry no generation and
        // always re-commit — setup_mpu flips to a large win.
        assert!(
            setup.pct() < -50.0,
            "setup_mpu should be a large win with the commit cache: {:+.1}%",
            setup.pct()
        );
        // With the cache forced off the paper's original shape returns:
        // a positive (but bounded) setup_mpu regression.
        let before = tt_hw::commit_cache::with_disabled(|| run(1));
        let setup_before = before.iter().find(|r| r.method == "setup_mpu").unwrap();
        assert!(
            setup_before.pct() > 0.0 && setup_before.pct() < 25.0,
            "setup_mpu without the cache should match the paper: {:+.1}%",
            setup_before.pct()
        );
    }

    #[test]
    fn render_contains_all_rows() {
        let rows = run(1);
        let table = render(&rows);
        for m in METHODS {
            assert!(table.contains(m), "missing {m} in table");
        }
    }
}
