//! Shared report/JSON rendering for the campaign and differential bins.
//!
//! The `e_fault_campaign` and `e61_differential` binaries used to build
//! their `BENCH_*.json` documents inline in `main`; the throughput
//! engine needs the exact same bytes from library code — both to report
//! a run and to *assert* that a parallel run's artifacts are
//! byte-identical to a serial run's. Wall-clock time is the one
//! legitimately nondeterministic field, so it is a parameter: the
//! determinism tests pass a fixed value and compare whole documents.

use crate::json;
use tt_hw::platform::ChipProfile;
use tt_kernel::campaign::ChipReport;
use tt_kernel::differential::DiffResult;

/// Renders the `BENCH_fault.json` document for a campaign run.
pub fn campaign_json(reports: &[ChipReport], seeds: u64, wall_ms: f64) -> String {
    let failures: usize = reports.iter().map(|r| r.failures.len()).sum();
    let mut doc = String::new();
    doc.push_str("{\n  \"experiment\": \"e_fault_campaign\",\n");
    doc.push_str(&format!("  \"seeds_per_chip\": {seeds},\n"));
    doc.push_str(&format!(
        "  \"injected_runs\": {},\n",
        reports.iter().map(|r| r.runs * 2).sum::<u64>()
    ));
    doc.push_str(&format!("  \"failures\": {failures},\n"));
    doc.push_str(&format!("  \"wall_clock_ms\": {},\n", json::num(wall_ms)));
    doc.push_str("  \"chips\": [\n");
    for (i, r) in reports.iter().enumerate() {
        doc.push_str(&format!(
            "    {{\"chip\": \"{}\", \"runs\": {}, \"fired\": {}, \"recoveries\": {}, \
             \"restarts\": {}, \"killed\": {}, \"recovery_cycles_warm_mean\": {}, \
             \"recovery_cycles_cold_mean\": {}, \"failures\": {}}}{}\n",
            json::escape(r.chip),
            r.runs * 2,
            r.fired,
            r.recoveries,
            r.restarts,
            r.killed,
            json::num(r.warm_mean()),
            json::num(r.cold_mean()),
            r.failures.len(),
            if i + 1 < reports.len() { "," } else { "" }
        ));
    }
    doc.push_str("  ]\n}\n");
    doc
}

/// Renders the `BENCH_e61.json` document for an all-chips differential
/// run.
pub fn e61_json(per_chip: &[(&ChipProfile, Vec<DiffResult>)], wall_ms: f64) -> String {
    let mut doc = String::new();
    doc.push_str("{\n  \"experiment\": \"e61_differential\",\n");
    doc.push_str(&format!("  \"wall_clock_ms\": {},\n", json::num(wall_ms)));
    doc.push_str("  \"chips\": [\n");
    for (i, (chip, results)) in per_chip.iter().enumerate() {
        let differing = results.iter().filter(|r| !r.matches()).count();
        let unexpected = results
            .iter()
            .filter(|r| r.matches() == r.expect_differs)
            .count();
        // matches() requires observable-trace equivalence, so this
        // counts divergences only among the expected console diffs.
        let divergent = results
            .iter()
            .filter(|r| r.trace_divergence.is_some())
            .count();
        doc.push_str(&format!(
            "    {{\"chip\": \"{}\", \"tests\": {}, \"differing\": {}, \"unexpected\": {}, \"observable_divergences\": {}}}{}\n",
            json::escape(chip.name),
            results.len(),
            differing,
            unexpected,
            divergent,
            if i + 1 < per_chip.len() { "," } else { "" }
        ));
    }
    doc.push_str("  ]\n}\n");
    doc
}

/// Tests whose verdict is UNEXPECTED across an all-chips run, as
/// `chip:test` strings (the e61 CI gate's failure list).
pub fn e61_unexpected(per_chip: &[(&ChipProfile, Vec<DiffResult>)]) -> Vec<String> {
    per_chip
        .iter()
        .flat_map(|(chip, results)| {
            results
                .iter()
                .filter(|r| r.matches() == r.expect_differs)
                .map(|r| format!("{}:{}", chip.name, r.name))
        })
        .collect()
}
