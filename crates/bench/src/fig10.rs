//! Figure 10: the proof-effort table.
//!
//! Scans this repository's own sources and reports, per component, the
//! Rust LOC, function counts (trusted subset) and contract-annotation LOC
//! (trusted subset) — the reproduction's version of the paper's
//! "3,603 lines of checked annotation across 2,581 functions".

use std::path::PathBuf;
use tt_contracts::effort::{
    default_components, effort_table, render_fig10, EffortCounts, EffortRow,
};

/// Locates the workspace root from this crate's manifest directory.
pub fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("workspace root")
        .to_path_buf()
}

/// Scans the workspace and returns the Fig. 10 rows plus the total.
pub fn run() -> (Vec<EffortRow>, EffortCounts) {
    effort_table(&default_components(&workspace_root()))
}

/// Renders the table.
pub fn render(rows: &[EffortRow], total: &EffortCounts) -> String {
    render_fig10(rows, total)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workspace_root_contains_crates_dir() {
        assert!(workspace_root().join("crates").is_dir());
    }

    #[test]
    fn every_component_has_substance() {
        let (rows, total) = run();
        assert_eq!(rows.len(), 5);
        for row in &rows {
            assert!(
                row.counts.source_loc > 100,
                "{} too small: {:?}",
                row.name,
                row.counts
            );
            assert!(row.counts.fns > 5, "{}: {:?}", row.name, row.counts);
        }
        // The headline ratio: a modest annotation overhead (the paper has
        // 3.6 KLOC of specs for 22 KLOC of source, ~16%; ours should be in
        // the same regime, well under 1:1).
        assert!(total.spec_loc * 2 < total.source_loc);
        assert!(total.spec_loc > 100, "specs too sparse: {total:?}");
    }

    #[test]
    fn rendered_table_lists_components_and_total() {
        let (rows, total) = run();
        let table = render(&rows, &total);
        for name in [
            "Kernel",
            "ARM MPU",
            "Risc-V MPU",
            "Flux-Std",
            "FluxArm",
            "Total",
        ] {
            assert!(table.contains(name), "missing {name}");
        }
    }
}
