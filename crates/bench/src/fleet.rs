//! Fleet campaigns: snapshot/restore-driven mass fault injection.
//!
//! PR 5's throughput engine parallelised the campaign but kept its unit
//! cost: every `(chip, seed, cache-mode)` run paid a full `Kernel::boot`
//! plus three flash/load cycles just to reach the state the previous run
//! started from. The fleet path boots each `(chip, cache-mode)` once per
//! worker, captures a [`tt_kernel::snapshot::MachineSnapshot`], and
//! resets with a dirty-page restore instead — the per-run reset drops
//! from a boot to a few copied pages, which is what makes 10^5-run
//! campaigns a CI job rather than an overnight batch.
//!
//! The speedup is only admissible because it is *gated*:
//! [`equivalence_failures`] demands that restored-machine runs are
//! byte-identical to fresh-boot runs (Full-scope trace, violations,
//! terminal states, fired counts) on every chip in both cache modes, and
//! [`check`] enforces both that gate and a restore-vs-boot speedup floor
//! (`min_restore_speedup` in `ci/bench_baseline.json`). Failing runs
//! persist as fixed-width [`CorpusRecord`]s under `ci/corpus/` and their
//! seeds shrink to 1-minimal schedules for the report.

use std::time::Instant;

use crate::json;
use tt_hw::platform::{ChipProfile, ALL_CHIPS};
use tt_kernel::campaign::{
    boot_probe, run_campaign_detailed, run_one, shrink_failing_seed, ChipReport, FleetRunner,
    RunRecord, UnitOutcome,
};
use tt_kernel::corpus::CorpusRecord;

/// Seeds the equivalence gate replays per `(chip, cache-mode)`:
/// one uninjected run plus two injected ones.
const EQUIVALENCE_SEEDS: [Option<u64>; 3] = [None, Some(1), Some(5)];

/// Compares one fresh-boot record against one restored-machine record;
/// `None` means byte-identical in every gated dimension.
fn diff_records(
    chip: &ChipProfile,
    seed: Option<u64>,
    cold: bool,
    fresh: &RunRecord,
    restored: &RunRecord,
) -> Option<String> {
    let tag = |what: &str| {
        format!(
            "{} seed {seed:?} {}: {what}",
            chip.name,
            if cold { "cold" } else { "warm" }
        )
    };
    if fresh.trace.events != restored.trace.events {
        let at = fresh
            .trace
            .events
            .iter()
            .zip(&restored.trace.events)
            .position(|(a, b)| a != b)
            .unwrap_or_else(|| fresh.trace.events.len().min(restored.trace.events.len()));
        return Some(tag(&format!(
            "restored trace diverged at event #{at} ({} vs {} events)",
            fresh.trace.events.len(),
            restored.trace.events.len()
        )));
    }
    if fresh.violations != restored.violations {
        return Some(tag("restored violations differ"));
    }
    if fresh.states != restored.states {
        return Some(tag(&format!(
            "restored terminal states differ: {:?} vs {:?}",
            fresh.states, restored.states
        )));
    }
    if fresh.fired != restored.fired {
        return Some(tag(&format!(
            "restored fired count differs: {} vs {}",
            fresh.fired, restored.fired
        )));
    }
    if (fresh.restarts, fresh.recoveries, fresh.recovery_cycles)
        != (
            restored.restarts,
            restored.recoveries,
            restored.recovery_cycles,
        )
    {
        return Some(tag("restored recovery tallies differ"));
    }
    None
}

/// The restore-equivalence gate: for every chip, both cache modes and
/// the `EQUIVALENCE_SEEDS`, a restored-machine run must reproduce the
/// fresh-boot run byte-for-byte. Returns the rendered failures (empty =
/// gate holds).
pub fn equivalence_failures() -> Vec<String> {
    let mut failures = Vec::new();
    for chip in &ALL_CHIPS {
        for cold in [false, true] {
            let run_pair = |seed: Option<u64>| {
                let (fresh, restored) = if cold {
                    let fresh = tt_hw::commit_cache::with_disabled(|| run_one(chip, seed));
                    let restored = tt_hw::commit_cache::with_disabled(|| {
                        let mut runner = FleetRunner::new(chip);
                        runner.run_seed(seed)
                    });
                    (fresh, restored)
                } else {
                    let fresh = run_one(chip, seed);
                    let mut runner = FleetRunner::new(chip);
                    (fresh, runner.run_seed(seed))
                };
                let diff = diff_records(chip, seed, cold, &fresh, &restored);
                tt_hw::trace::recycle(fresh.trace);
                tt_hw::trace::recycle(restored.trace);
                diff
            };
            for seed in EQUIVALENCE_SEEDS {
                if let Some(f) = run_pair(seed) {
                    failures.push(f);
                }
            }
        }
    }
    failures
}

/// Mean per-run reset cost of the two campaign paths, measured on the
/// calling thread across all chips.
#[derive(Debug, Clone, Copy)]
pub struct ResetCost {
    /// Mean cost of a fresh campaign boot (flash + load included), µs.
    pub boot_us: f64,
    /// Mean cost of a snapshot restore (boot-trace replay included), µs.
    pub restore_us: f64,
}

impl ResetCost {
    /// How many restores fit in one boot.
    pub fn speedup(&self) -> f64 {
        self.boot_us / self.restore_us.max(1e-9)
    }
}

/// Measures [`ResetCost`] with `iters` boots and `iters` restores per
/// chip (the first boot per chip also serves as the snapshot source and
/// is not timed).
pub fn measure_reset_cost(iters: u32) -> ResetCost {
    let mut boot_total = 0.0;
    let mut restore_total = 0.0;
    let mut samples = 0u64;
    for chip in &ALL_CHIPS {
        let mut runner = FleetRunner::new(chip);
        // Warm both paths once so neither pays first-touch allocation.
        boot_probe(chip);
        runner.restore_probe();
        let t0 = Instant::now();
        for _ in 0..iters {
            boot_probe(chip);
        }
        boot_total += t0.elapsed().as_secs_f64();
        let t1 = Instant::now();
        for _ in 0..iters {
            runner.restore_probe();
        }
        restore_total += t1.elapsed().as_secs_f64();
        samples += u64::from(iters);
    }
    ResetCost {
        boot_us: boot_total * 1e6 / samples as f64,
        restore_us: restore_total * 1e6 / samples as f64,
    }
}

/// One measured fleet campaign.
#[derive(Debug, Clone)]
pub struct FleetResult {
    /// Seeds per chip the requested run budget decomposed into.
    pub seeds_per_chip: u64,
    /// Worker count.
    pub threads: usize,
    /// Injected runs actually executed (chips × seeds × 2 cache modes).
    pub total_runs: u64,
    /// Campaign wall-clock, milliseconds.
    pub wall_ms: f64,
    /// Per-chip campaign reports (oracle results included).
    pub reports: Vec<ChipReport>,
    /// Per-run outcomes in schedule order.
    pub outcomes: Vec<UnitOutcome>,
}

impl FleetResult {
    /// Campaign throughput in injected runs per second.
    pub fn runs_per_sec(&self) -> f64 {
        self.total_runs as f64 / (self.wall_ms / 1e3)
    }

    /// All oracle failures across chips, in report order.
    pub fn failures(&self) -> Vec<&String> {
        self.reports.iter().flat_map(|r| &r.failures).collect()
    }
}

/// Runs a fleet campaign sized to roughly `total_runs` injected runs
/// (rounded down to whole seeds per chip, minimum one).
pub fn run_fleet(total_runs: u64, threads: usize) -> FleetResult {
    let per_chip_runs = ALL_CHIPS.len() as u64 * 2;
    let seeds = (total_runs / per_chip_runs).max(1);
    let t0 = Instant::now();
    let (reports, outcomes) = run_campaign_detailed(&ALL_CHIPS, seeds, threads);
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    FleetResult {
        seeds_per_chip: seeds,
        threads,
        total_runs: outcomes.len() as u64,
        wall_ms,
        reports,
        outcomes,
    }
}

/// Reduces one [`UnitOutcome`] to its fixed-width corpus record.
pub fn corpus_record(outcome: &UnitOutcome) -> CorpusRecord {
    CorpusRecord {
        chip: outcome.chip.min(u8::MAX as usize) as u8,
        cold: outcome.cold,
        killed: outcome.killed,
        seed: outcome.seed,
        fired: outcome.fired.min(u64::from(u16::MAX)) as u16,
        restarts: outcome.restarts.min(u32::from(u16::MAX)) as u16,
        recoveries: outcome.recoveries.min(u32::from(u16::MAX)) as u16,
        failures: outcome.failures.len().min(u16::MAX as usize) as u16,
        trace_len: outcome.trace_len.min(u32::MAX as usize) as u32,
        recovery_cycles: outcome.recovery_cycles,
    }
}

/// The corpus of *failing* runs (empty when the oracle held everywhere).
pub fn failing_records(outcomes: &[UnitOutcome]) -> Vec<CorpusRecord> {
    outcomes
        .iter()
        .filter(|o| !o.failures.is_empty())
        .map(corpus_record)
        .collect()
}

/// Shrinks the first `limit` failing outcomes to 1-minimal schedules,
/// rendering one line per seed.
pub fn shrink_failures(outcomes: &[UnitOutcome], limit: usize) -> Vec<String> {
    outcomes
        .iter()
        .filter(|o| !o.failures.is_empty())
        .take(limit)
        .map(|o| {
            let plan = shrink_failing_seed(&ALL_CHIPS[o.chip], o.seed, o.cold);
            format!(
                "{} seed {} {}: minimized to {} injection(s): {:?}",
                ALL_CHIPS[o.chip].name,
                o.seed,
                if o.cold { "cold" } else { "warm" },
                plan.injections.len(),
                plan.injections
            )
        })
        .collect()
}

/// Renders the human-readable fleet table: per-chip runs and tallies,
/// then the throughput and reset-cost lines.
pub fn render(result: &FleetResult, cost: &ResetCost) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "fleet campaign: {} runs ({} seeds x {} chips x 2 cache modes) on {} worker(s)\n",
        result.total_runs,
        result.seeds_per_chip,
        result.reports.len(),
        result.threads,
    ));
    out.push_str(&format!(
        "{:<14} {:>8} {:>8} {:>9} {:>8} {:>7}\n",
        "chip", "runs", "fired", "recovers", "restarts", "killed"
    ));
    for r in &result.reports {
        out.push_str(&format!(
            "{:<14} {:>8} {:>8} {:>9} {:>8} {:>7}\n",
            r.chip,
            r.runs * 2,
            r.fired,
            r.recoveries,
            r.restarts,
            r.killed,
        ));
    }
    out.push_str(&format!(
        "throughput: {:.0} runs/sec ({:.1} ms wall)\n",
        result.runs_per_sec(),
        result.wall_ms,
    ));
    out.push_str(&format!(
        "reset cost: boot {:.1} us/run, restore {:.1} us/run ({:.1}x)\n",
        cost.boot_us,
        cost.restore_us,
        cost.speedup(),
    ));
    let failures = result.failures();
    if failures.is_empty() {
        out.push_str("all runs: bystander traces identical, zero violations, converged\n");
    } else {
        out.push_str(&format!("{} FAILURES:\n", failures.len()));
        for f in failures {
            out.push_str(&format!("  {f}\n"));
        }
    }
    out
}

/// Renders the `BENCH_throughput.json` document for the fleet job.
pub fn render_json(
    result: &FleetResult,
    cost: &ResetCost,
    equivalence: &[String],
    cores: usize,
) -> String {
    let mut doc = String::new();
    doc.push_str("{\n  \"experiment\": \"e_fleet\",\n");
    doc.push_str(&format!("  \"total_runs\": {},\n", result.total_runs));
    doc.push_str(&format!(
        "  \"seeds_per_chip\": {},\n",
        result.seeds_per_chip
    ));
    doc.push_str(&format!("  \"threads\": {},\n", result.threads));
    doc.push_str(&format!("  \"cores\": {cores},\n"));
    doc.push_str(&format!("  \"wall_ms\": {},\n", json::num(result.wall_ms)));
    doc.push_str(&format!(
        "  \"fleet_runs_per_sec\": {},\n",
        json::num(result.runs_per_sec())
    ));
    doc.push_str(&format!(
        "  \"boot_us_per_run\": {},\n",
        json::num(cost.boot_us)
    ));
    doc.push_str(&format!(
        "  \"restore_us_per_run\": {},\n",
        json::num(cost.restore_us)
    ));
    doc.push_str(&format!(
        "  \"restore_speedup\": {},\n",
        json::num(cost.speedup())
    ));
    doc.push_str(&format!(
        "  \"restore_equivalent\": {},\n",
        equivalence.is_empty()
    ));
    doc.push_str(&format!("  \"failures\": {},\n", result.failures().len()));
    doc.push_str("  \"chips\": [\n");
    for (i, r) in result.reports.iter().enumerate() {
        doc.push_str(&format!(
            "    {{\"chip\": \"{}\", \"runs\": {}, \"fired\": {}, \"recoveries\": {}, \
             \"restarts\": {}, \"killed\": {}}}{}\n",
            r.chip,
            r.runs * 2,
            r.fired,
            r.recoveries,
            r.restarts,
            r.killed,
            if i + 1 < result.reports.len() {
                ","
            } else {
                ""
            }
        ));
    }
    doc.push_str("  ]\n}\n");
    doc
}

/// The CI gate: restore equivalence must hold on every chip, the
/// campaign oracle must hold on every run, and — when the baseline pins
/// a `min_restore_speedup` — the measured restore-vs-boot speedup must
/// clear it. Returns notes on success, failures otherwise.
pub fn check(
    result: &FleetResult,
    cost: &ResetCost,
    equivalence: &[String],
    baseline: &str,
) -> Result<Vec<String>, Vec<String>> {
    let mut failures = Vec::new();
    let mut notes = Vec::new();
    for f in equivalence {
        failures.push(format!("restore equivalence: {f}"));
    }
    if equivalence.is_empty() {
        notes.push(format!(
            "restore equivalence: {} chips x 2 cache modes x {} seeds byte-identical",
            ALL_CHIPS.len(),
            EQUIVALENCE_SEEDS.len(),
        ));
    }
    for f in result.failures() {
        failures.push(format!("campaign oracle: {f}"));
    }
    if result.failures().is_empty() {
        notes.push(format!("campaign oracle: {} runs clean", result.total_runs));
    }
    match json::read_number(baseline, "min_restore_speedup") {
        Some(floor) => {
            let speedup = cost.speedup();
            if speedup < floor {
                failures.push(format!(
                    "restore speedup {speedup:.1}x below floor {floor:.1}x \
                     (boot {:.1} us vs restore {:.1} us)",
                    cost.boot_us, cost.restore_us
                ));
            } else {
                notes.push(format!(
                    "restore speedup: {speedup:.1}x >= floor {floor:.1}x"
                ));
            }
        }
        None => notes.push("baseline has no min_restore_speedup; floor skipped".into()),
    }
    if failures.is_empty() {
        Ok(notes)
    } else {
        Err(failures)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_fleet_runs_clean_and_counts_add_up() {
        let result = run_fleet(28, 1);
        // 28 requested / (7 chips * 2 modes) = 2 seeds per chip.
        assert_eq!(result.seeds_per_chip, 2);
        assert_eq!(result.total_runs, 28);
        assert_eq!(result.outcomes.len(), 28);
        assert!(result.failures().is_empty(), "{:#?}", result.failures());
        assert!(failing_records(&result.outcomes).is_empty());
        // Every outcome reduces to a decodable corpus record.
        for o in &result.outcomes {
            let rec = corpus_record(o);
            assert_eq!(CorpusRecord::decode(&rec.encode()).unwrap(), rec);
        }
    }

    #[test]
    fn reset_cost_shows_restore_cheaper_than_boot() {
        let cost = measure_reset_cost(3);
        assert!(cost.boot_us > 0.0);
        assert!(cost.restore_us > 0.0);
        assert!(
            cost.speedup() > 1.0,
            "restore ({:.1} us) not cheaper than boot ({:.1} us)",
            cost.restore_us,
            cost.boot_us
        );
    }

    #[test]
    fn check_gates_each_dimension() {
        let result = run_fleet(14, 1);
        let cost = ResetCost {
            boot_us: 1000.0,
            restore_us: 10.0,
        };
        let baseline = "{\"min_restore_speedup\": 20.0}";
        let notes = check(&result, &cost, &[], baseline).unwrap();
        assert!(notes.iter().any(|n| n.contains("restore speedup")));
        // Equivalence failure fails the gate.
        let eq = vec!["chip X diverged".to_string()];
        assert!(check(&result, &cost, &eq, baseline).is_err());
        // Speedup below the floor fails the gate.
        let slow = ResetCost {
            boot_us: 100.0,
            restore_us: 10.0,
        };
        assert!(check(&result, &slow, &[], baseline).is_err());
        // No floor in the baseline: skipped with a note.
        let notes = check(&result, &slow, &[], "{}").unwrap();
        assert!(notes.iter().any(|n| n.contains("skipped")), "{notes:?}");
    }

    #[test]
    fn render_json_round_trips_key_fields() {
        let result = run_fleet(14, 1);
        let cost = ResetCost {
            boot_us: 500.0,
            restore_us: 20.0,
        };
        let doc = render_json(&result, &cost, &[], 4);
        assert!(doc.contains("\"experiment\": \"e_fleet\""));
        assert_eq!(json::read_number(&doc, "total_runs"), Some(14.0));
        assert_eq!(json::read_number(&doc, "restore_speedup"), Some(25.0));
        assert_eq!(json::read_number(&doc, "failures"), Some(0.0));
        assert!(doc.contains("\"restore_equivalent\": true"));
        assert!(doc.contains("\"fleet_runs_per_sec\""));
    }

    #[test]
    fn shrink_failures_is_empty_on_a_clean_fleet() {
        let result = run_fleet(14, 1);
        assert!(shrink_failures(&result.outcomes, 10).is_empty());
    }
}
