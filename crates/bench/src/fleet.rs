//! Fleet campaigns: snapshot/restore-driven mass fault injection.
//!
//! PR 5's throughput engine parallelised the campaign but kept its unit
//! cost: every `(chip, seed, cache-mode)` run paid a full `Kernel::boot`
//! plus three flash/load cycles just to reach the state the previous run
//! started from. The fleet path boots each `(chip, cache-mode)` once per
//! worker, captures a [`tt_kernel::snapshot::MachineSnapshot`], and
//! resets with a dirty-page restore instead — the per-run reset drops
//! from a boot to a few copied pages, which is what makes 10^5-run
//! campaigns a CI job rather than an overnight batch.
//!
//! The speedup is only admissible because it is *gated*:
//! [`equivalence_failures`] demands that restored-machine runs are
//! byte-identical to fresh-boot runs (Full-scope trace, violations,
//! terminal states, fired counts) on every chip in both cache modes, and
//! [`check`] enforces both that gate and a restore-vs-boot speedup floor
//! (`min_restore_speedup` in `ci/bench_baseline.json`). Failing runs
//! persist as fixed-width [`CorpusRecord`]s under `ci/corpus/` and their
//! seeds shrink to 1-minimal schedules for the report.

use std::path::Path;
use std::time::Instant;

use crate::json;
use tt_hw::platform::{ChipProfile, ALL_CHIPS};
use tt_kernel::campaign::{
    boot_probe, run_campaign_profiled, run_one, shrink_failing_seed, ChipReport, FleetRunner,
    RunRecord, Unit, UnitOutcome,
};
use tt_kernel::corpus::{read_corpus, CorpusRecord};

/// Seeds the equivalence gate replays per `(chip, cache-mode)`:
/// one uninjected run plus two injected ones.
const EQUIVALENCE_SEEDS: [Option<u64>; 3] = [None, Some(1), Some(5)];

/// Minimum campaign size for the fleet throughput floor to engage.
/// Below this, fixed per-campaign costs (snapshot capture, reference
/// construction) dominate the measured rate, which then says nothing
/// about the steady-state figure `fleet_runs_per_sec_prev` pins —
/// that reference was measured at 10^5 runs.
const FLEET_FLOOR_MIN_RUNS: u64 = 50_000;

/// Compares one fresh-boot record against one restored-machine record;
/// `None` means byte-identical in every gated dimension.
fn diff_records(
    chip: &ChipProfile,
    seed: Option<u64>,
    cold: bool,
    fresh: &RunRecord,
    restored: &RunRecord,
) -> Option<String> {
    let tag = |what: &str| {
        format!(
            "{} seed {seed:?} {}: {what}",
            chip.name,
            if cold { "cold" } else { "warm" }
        )
    };
    if fresh.trace.events != restored.trace.events {
        let at = fresh
            .trace
            .events
            .iter()
            .zip(&restored.trace.events)
            .position(|(a, b)| a != b)
            .unwrap_or_else(|| fresh.trace.events.len().min(restored.trace.events.len()));
        return Some(tag(&format!(
            "restored trace diverged at event #{at} ({} vs {} events)",
            fresh.trace.events.len(),
            restored.trace.events.len()
        )));
    }
    if fresh.violations != restored.violations {
        return Some(tag("restored violations differ"));
    }
    if fresh.states != restored.states {
        return Some(tag(&format!(
            "restored terminal states differ: {:?} vs {:?}",
            fresh.states, restored.states
        )));
    }
    if fresh.fired != restored.fired {
        return Some(tag(&format!(
            "restored fired count differs: {} vs {}",
            fresh.fired, restored.fired
        )));
    }
    if (fresh.restarts, fresh.recoveries, fresh.recovery_cycles)
        != (
            restored.restarts,
            restored.recoveries,
            restored.recovery_cycles,
        )
    {
        return Some(tag("restored recovery tallies differ"));
    }
    if (fresh.cache_hits, fresh.cache_misses) != (restored.cache_hits, restored.cache_misses) {
        return Some(tag(&format!(
            "restored commit-cache counters differ: {}h/{}m vs {}h/{}m",
            fresh.cache_hits, fresh.cache_misses, restored.cache_hits, restored.cache_misses
        )));
    }
    None
}

/// The restore-equivalence gate: for every chip, both cache modes and
/// the `EQUIVALENCE_SEEDS`, a restored-machine run must reproduce the
/// fresh-boot run byte-for-byte. Returns the rendered failures (empty =
/// gate holds).
pub fn equivalence_failures() -> Vec<String> {
    let mut failures = Vec::new();
    for chip in &ALL_CHIPS {
        for cold in [false, true] {
            let run_pair = |seed: Option<u64>| {
                let (fresh, restored) = if cold {
                    let fresh = tt_hw::commit_cache::with_disabled(|| run_one(chip, seed));
                    let restored = tt_hw::commit_cache::with_disabled(|| {
                        let mut runner = FleetRunner::new(chip);
                        runner.run_seed(seed)
                    });
                    (fresh, restored)
                } else {
                    let fresh = run_one(chip, seed);
                    let mut runner = FleetRunner::new(chip);
                    (fresh, runner.run_seed(seed))
                };
                let diff = diff_records(chip, seed, cold, &fresh, &restored);
                tt_hw::trace::recycle(fresh.trace);
                tt_hw::trace::recycle(restored.trace);
                diff
            };
            for seed in EQUIVALENCE_SEEDS {
                if let Some(f) = run_pair(seed) {
                    failures.push(f);
                }
            }
        }
    }
    failures
}

/// Mean per-run reset cost of the campaign's reset paths, measured on
/// the calling thread across all chips.
#[derive(Debug, Clone, Copy)]
pub struct ResetCost {
    /// Mean cost of a fresh campaign boot (flash + load included), µs.
    pub boot_us: f64,
    /// Mean cost of a snapshot restore (boot-trace replay included), µs.
    pub restore_us: f64,
    /// Mean cost of a mid-run (post-first-tick) snapshot restore, µs.
    pub midrun_us: f64,
    /// Mean cost of what the mid-run restore replaces: a post-boot
    /// restore plus a live first scheduler tick, µs.
    pub first_tick_us: f64,
}

impl ResetCost {
    /// How many restores fit in one boot.
    pub fn speedup(&self) -> f64 {
        self.boot_us / self.restore_us.max(1e-9)
    }

    /// How many mid-run restores fit in the restore-plus-first-tick they
    /// replace — the `min_midrun_restore_speedup` gate's measurement.
    pub fn midrun_speedup(&self) -> f64 {
        self.first_tick_us / self.midrun_us.max(1e-9)
    }
}

/// Measures [`ResetCost`] with `iters` samples per path per chip (the
/// first boot per chip also serves as the snapshot source and is not
/// timed).
pub fn measure_reset_cost(iters: u32) -> ResetCost {
    let mut boot_total = 0.0;
    let mut restore_total = 0.0;
    let mut midrun_total = 0.0;
    let mut first_tick_total = 0.0;
    let mut samples = 0u64;
    for chip in &ALL_CHIPS {
        let mut runner = FleetRunner::new(chip);
        // Warm every path once so none pays first-touch allocation.
        boot_probe(chip);
        runner.restore_probe();
        runner.midrun_probe();
        runner.first_tick_probe();
        let t0 = Instant::now();
        for _ in 0..iters {
            boot_probe(chip);
        }
        boot_total += t0.elapsed().as_secs_f64();
        let t1 = Instant::now();
        for _ in 0..iters {
            runner.restore_probe();
        }
        restore_total += t1.elapsed().as_secs_f64();
        let t2 = Instant::now();
        for _ in 0..iters {
            runner.midrun_probe();
        }
        midrun_total += t2.elapsed().as_secs_f64();
        let t3 = Instant::now();
        for _ in 0..iters {
            runner.first_tick_probe();
        }
        first_tick_total += t3.elapsed().as_secs_f64();
        samples += u64::from(iters);
    }
    let mean_us = |total: f64| total * 1e6 / samples as f64;
    ResetCost {
        boot_us: mean_us(boot_total),
        restore_us: mean_us(restore_total),
        midrun_us: mean_us(midrun_total),
        first_tick_us: mean_us(first_tick_total),
    }
}

/// Distribution summary of one wall-clock phase across a campaign's
/// runs, in microseconds.
#[derive(Debug, Clone, Copy, Default)]
pub struct PhaseStats {
    /// Median per-run cost.
    pub p50_us: f64,
    /// 99th-percentile per-run cost.
    pub p99_us: f64,
    /// Mean per-run cost.
    pub mean_us: f64,
}

fn phase_stats(samples_ns: &mut [u64]) -> PhaseStats {
    if samples_ns.is_empty() {
        return PhaseStats::default();
    }
    samples_ns.sort_unstable();
    let pick = |p: usize| samples_ns[(samples_ns.len() * p / 100).min(samples_ns.len() - 1)];
    let sum: u64 = samples_ns.iter().sum();
    PhaseStats {
        p50_us: pick(50) as f64 / 1e3,
        p99_us: pick(99) as f64 / 1e3,
        mean_us: (sum as f64 / samples_ns.len() as f64) / 1e3,
    }
}

/// Per-phase breakdown of where a fleet campaign's wall-clock went:
/// restore / run / collect / validate percentiles, plus the
/// snapshot-capture amortization and the mid-run hit rate.
#[derive(Debug, Clone, Copy, Default)]
pub struct FleetProfile {
    /// Snapshot restore + plan arming.
    pub restore: PhaseStats,
    /// Run-body execution.
    pub run: PhaseStats,
    /// Sink draining into the record.
    pub collect: PhaseStats,
    /// Oracle validation against the reference.
    pub validate: PhaseStats,
    /// Runs that resumed from the mid-run snapshot.
    pub midrun_runs: u64,
    /// Fresh runner boots across all workers.
    pub boots: u64,
    /// Mean snapshot-capture cost amortized over every run, µs.
    pub capture_amortized_us: f64,
}

/// Computes the [`FleetProfile`] from a campaign's outcomes.
pub fn profile(result: &FleetResult) -> FleetProfile {
    let collect =
        |f: fn(&UnitOutcome) -> u64| -> Vec<u64> { result.outcomes.iter().map(f).collect() };
    let mut restore = collect(|o| o.restore_ns);
    let mut run = collect(|o| o.run_ns);
    let mut collect_ns = collect(|o| o.collect_ns);
    let mut validate = collect(|o| o.validate_ns);
    FleetProfile {
        restore: phase_stats(&mut restore),
        run: phase_stats(&mut run),
        collect: phase_stats(&mut collect_ns),
        validate: phase_stats(&mut validate),
        midrun_runs: result.outcomes.iter().filter(|o| o.midrun).count() as u64,
        boots: result.boots,
        capture_amortized_us: result.capture_ns as f64
            / 1e3
            / (result.outcomes.len().max(1)) as f64,
    }
}

/// One measured fleet campaign.
#[derive(Debug, Clone)]
pub struct FleetResult {
    /// Seeds per chip the requested run budget decomposed into.
    pub seeds_per_chip: u64,
    /// Worker count.
    pub threads: usize,
    /// Injected runs actually executed (chips × seeds × 2 cache modes).
    pub total_runs: u64,
    /// Campaign wall-clock, milliseconds.
    pub wall_ms: f64,
    /// Per-chip campaign reports (oracle results included).
    pub reports: Vec<ChipReport>,
    /// Per-run outcomes in schedule order.
    pub outcomes: Vec<UnitOutcome>,
    /// Fresh runner boots across all workers.
    pub boots: u64,
    /// Total nanoseconds workers spent booting + capturing snapshots.
    pub capture_ns: u64,
    /// Units fronted by corpus-guided scheduling.
    pub prioritized: usize,
}

impl FleetResult {
    /// Campaign throughput in injected runs per second.
    pub fn runs_per_sec(&self) -> f64 {
        self.total_runs as f64 / (self.wall_ms / 1e3)
    }

    /// All oracle failures across chips, in report order.
    pub fn failures(&self) -> Vec<&String> {
        self.reports.iter().flat_map(|r| &r.failures).collect()
    }
}

/// Runs a fleet campaign sized to roughly `total_runs` injected runs
/// (rounded down to whole seeds per chip, minimum one).
pub fn run_fleet(total_runs: u64, threads: usize) -> FleetResult {
    run_fleet_prioritized(total_runs, threads, &[])
}

/// [`run_fleet`] with corpus-guided scheduling: `priority` units
/// (typically [`priority_from_corpus`]) run before the default
/// chip-major order, so previously failing seeds report in the opening
/// seconds of a million-run campaign.
pub fn run_fleet_prioritized(total_runs: u64, threads: usize, priority: &[Unit]) -> FleetResult {
    let per_chip_runs = ALL_CHIPS.len() as u64 * 2;
    let seeds = (total_runs / per_chip_runs).max(1);
    let t0 = Instant::now();
    let campaign = run_campaign_profiled(&ALL_CHIPS, seeds, threads, priority);
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    FleetResult {
        seeds_per_chip: seeds,
        threads,
        total_runs: campaign.outcomes.len() as u64,
        wall_ms,
        reports: campaign.reports,
        outcomes: campaign.outcomes,
        boots: campaign.boots,
        capture_ns: campaign.capture_ns,
        prioritized: priority.len(),
    }
}

/// Decodes a persisted failure corpus (`ci/corpus/failures.bin`) into
/// priority units for [`run_fleet_prioritized`]. A missing file is an
/// empty priority list (first campaign, or the previous one was clean);
/// a malformed one is a real error — a corrupt corpus should fail the
/// job, not silently drop the seeds it was supposed to front.
pub fn priority_from_corpus(path: &Path) -> std::io::Result<Vec<Unit>> {
    if !path.exists() {
        return Ok(Vec::new());
    }
    Ok(read_corpus(path)?
        .iter()
        .map(|r| (r.chip as usize, r.seed, r.cold))
        .collect())
}

/// Reduces one [`UnitOutcome`] to its fixed-width corpus record.
pub fn corpus_record(outcome: &UnitOutcome) -> CorpusRecord {
    CorpusRecord {
        chip: outcome.chip.min(u8::MAX as usize) as u8,
        cold: outcome.cold,
        killed: outcome.killed,
        clean: false,
        seed: outcome.seed,
        schedule: 0,
        fired: outcome.fired.min(u64::from(u16::MAX)) as u16,
        restarts: outcome.restarts.min(u32::from(u16::MAX)) as u16,
        recoveries: outcome.recoveries.min(u32::from(u16::MAX)) as u16,
        failures: outcome.failures.len().min(u16::MAX as usize) as u16,
        trace_len: outcome.trace_len.min(u32::MAX as usize) as u32,
        recovery_cycles: outcome.recovery_cycles,
    }
}

/// The corpus of *failing* runs (empty when the oracle held everywhere).
pub fn failing_records(outcomes: &[UnitOutcome]) -> Vec<CorpusRecord> {
    outcomes
        .iter()
        .filter(|o| !o.failures.is_empty())
        .map(corpus_record)
        .collect()
}

/// Shrinks the first `limit` failing outcomes to 1-minimal schedules,
/// rendering one line per seed.
pub fn shrink_failures(outcomes: &[UnitOutcome], limit: usize) -> Vec<String> {
    outcomes
        .iter()
        .filter(|o| !o.failures.is_empty())
        .take(limit)
        .map(|o| {
            let plan = shrink_failing_seed(&ALL_CHIPS[o.chip], o.seed, o.cold);
            format!(
                "{} seed {} {}: minimized to {} injection(s): {:?}",
                ALL_CHIPS[o.chip].name,
                o.seed,
                if o.cold { "cold" } else { "warm" },
                plan.injections.len(),
                plan.injections
            )
        })
        .collect()
}

/// Renders the human-readable fleet table: per-chip runs and tallies,
/// then the throughput and reset-cost lines.
pub fn render(result: &FleetResult, cost: &ResetCost) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "fleet campaign: {} runs ({} seeds x {} chips x 2 cache modes) on {} worker(s)\n",
        result.total_runs,
        result.seeds_per_chip,
        result.reports.len(),
        result.threads,
    ));
    out.push_str(&format!(
        "{:<14} {:>8} {:>8} {:>9} {:>8} {:>7}\n",
        "chip", "runs", "fired", "recovers", "restarts", "killed"
    ));
    for r in &result.reports {
        out.push_str(&format!(
            "{:<14} {:>8} {:>8} {:>9} {:>8} {:>7}\n",
            r.chip,
            r.runs * 2,
            r.fired,
            r.recoveries,
            r.restarts,
            r.killed,
        ));
    }
    out.push_str(&format!(
        "throughput: {:.0} runs/sec ({:.1} ms wall)\n",
        result.runs_per_sec(),
        result.wall_ms,
    ));
    out.push_str(&format!(
        "reset cost: boot {:.1} us/run, restore {:.1} us/run ({:.1}x)\n",
        cost.boot_us,
        cost.restore_us,
        cost.speedup(),
    ));
    out.push_str(&format!(
        "midrun: restore {:.2} us vs restore+tick {:.2} us ({:.1}x)\n",
        cost.midrun_us,
        cost.first_tick_us,
        cost.midrun_speedup(),
    ));
    let failures = result.failures();
    if failures.is_empty() {
        out.push_str("all runs: bystander traces identical, zero violations, converged\n");
    } else {
        out.push_str(&format!("{} FAILURES:\n", failures.len()));
        for f in failures {
            out.push_str(&format!("  {f}\n"));
        }
    }
    out
}

/// Renders the human-readable per-phase profile table (`--profile`).
pub fn render_profile(result: &FleetResult, prof: &FleetProfile) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "phase profile over {} runs ({} mid-run resumes, {} fresh boots",
        result.outcomes.len(),
        prof.midrun_runs,
        prof.boots,
    ));
    if result.prioritized > 0 {
        out.push_str(&format!(", {} corpus-prioritized", result.prioritized));
    }
    out.push_str(")\n");
    out.push_str(&format!(
        "{:<10} {:>10} {:>10} {:>10}\n",
        "phase", "p50 us", "p99 us", "mean us"
    ));
    for (name, s) in [
        ("restore", &prof.restore),
        ("run", &prof.run),
        ("collect", &prof.collect),
        ("validate", &prof.validate),
    ] {
        out.push_str(&format!(
            "{:<10} {:>10.2} {:>10.2} {:>10.2}\n",
            name, s.p50_us, s.p99_us, s.mean_us
        ));
    }
    out.push_str(&format!(
        "capture amortization: {:.2} us/run\n",
        prof.capture_amortized_us
    ));
    out
}

/// Renders the `BENCH_throughput.json` document for the fleet job,
/// including the per-phase profile.
pub fn render_json(
    result: &FleetResult,
    cost: &ResetCost,
    prof: &FleetProfile,
    equivalence: &[String],
    cores: usize,
) -> String {
    let mut doc = String::new();
    doc.push_str("{\n  \"experiment\": \"e_fleet\",\n");
    doc.push_str(&format!("  \"total_runs\": {},\n", result.total_runs));
    doc.push_str(&format!(
        "  \"seeds_per_chip\": {},\n",
        result.seeds_per_chip
    ));
    doc.push_str(&format!("  \"threads\": {},\n", result.threads));
    doc.push_str(&format!("  \"cores\": {cores},\n"));
    doc.push_str(&format!("  \"wall_ms\": {},\n", json::num(result.wall_ms)));
    doc.push_str(&format!(
        "  \"fleet_runs_per_sec\": {},\n",
        json::num(result.runs_per_sec())
    ));
    doc.push_str(&format!(
        "  \"boot_us_per_run\": {},\n",
        json::num(cost.boot_us)
    ));
    doc.push_str(&format!(
        "  \"restore_us_per_run\": {},\n",
        json::num(cost.restore_us)
    ));
    doc.push_str(&format!(
        "  \"restore_speedup\": {},\n",
        json::num(cost.speedup())
    ));
    doc.push_str(&format!(
        "  \"midrun_us_per_run\": {},\n",
        json::num(cost.midrun_us)
    ));
    doc.push_str(&format!(
        "  \"first_tick_us_per_run\": {},\n",
        json::num(cost.first_tick_us)
    ));
    doc.push_str(&format!(
        "  \"midrun_restore_speedup\": {},\n",
        json::num(cost.midrun_speedup())
    ));
    doc.push_str(&format!("  \"midrun_runs\": {},\n", prof.midrun_runs));
    doc.push_str(&format!("  \"fresh_boots\": {},\n", prof.boots));
    doc.push_str(&format!(
        "  \"capture_amortized_us\": {},\n",
        json::num(prof.capture_amortized_us)
    ));
    doc.push_str(&format!(
        "  \"prioritized_units\": {},\n",
        result.prioritized
    ));
    doc.push_str("  \"phases\": {\n");
    let phases = [
        ("restore", &prof.restore),
        ("run", &prof.run),
        ("collect", &prof.collect),
        ("validate", &prof.validate),
    ];
    for (i, (name, s)) in phases.iter().enumerate() {
        doc.push_str(&format!(
            "    \"{name}\": {{\"p50_us\": {}, \"p99_us\": {}, \"mean_us\": {}}}{}\n",
            json::num(s.p50_us),
            json::num(s.p99_us),
            json::num(s.mean_us),
            if i + 1 < phases.len() { "," } else { "" }
        ));
    }
    doc.push_str("  },\n");
    doc.push_str(&format!(
        "  \"restore_equivalent\": {},\n",
        equivalence.is_empty()
    ));
    doc.push_str(&format!("  \"failures\": {},\n", result.failures().len()));
    doc.push_str("  \"chips\": [\n");
    for (i, r) in result.reports.iter().enumerate() {
        doc.push_str(&format!(
            "    {{\"chip\": \"{}\", \"runs\": {}, \"fired\": {}, \"recoveries\": {}, \
             \"restarts\": {}, \"killed\": {}}}{}\n",
            r.chip,
            r.runs * 2,
            r.fired,
            r.recoveries,
            r.restarts,
            r.killed,
            if i + 1 < result.reports.len() {
                ","
            } else {
                ""
            }
        ));
    }
    doc.push_str("  ]\n}\n");
    doc
}

/// The CI gate: restore equivalence must hold on every chip, the
/// campaign oracle must hold on every run, and — when the baseline pins
/// a `min_restore_speedup` — the measured restore-vs-boot speedup must
/// clear it. Returns notes on success, failures otherwise.
pub fn check(
    result: &FleetResult,
    cost: &ResetCost,
    equivalence: &[String],
    baseline: &str,
) -> Result<Vec<String>, Vec<String>> {
    let mut failures = Vec::new();
    let mut notes = Vec::new();
    for f in equivalence {
        failures.push(format!("restore equivalence: {f}"));
    }
    if equivalence.is_empty() {
        notes.push(format!(
            "restore equivalence: {} chips x 2 cache modes x {} seeds byte-identical",
            ALL_CHIPS.len(),
            EQUIVALENCE_SEEDS.len(),
        ));
    }
    for f in result.failures() {
        failures.push(format!("campaign oracle: {f}"));
    }
    if result.failures().is_empty() {
        notes.push(format!("campaign oracle: {} runs clean", result.total_runs));
    }
    match json::read_number(baseline, "min_restore_speedup") {
        Some(floor) => {
            let speedup = cost.speedup();
            if speedup < floor {
                failures.push(format!(
                    "restore speedup {speedup:.1}x below floor {floor:.1}x \
                     (boot {:.1} us vs restore {:.1} us)",
                    cost.boot_us, cost.restore_us
                ));
            } else {
                notes.push(format!(
                    "restore speedup: {speedup:.1}x >= floor {floor:.1}x"
                ));
            }
        }
        None => notes.push("baseline has no min_restore_speedup; floor skipped".into()),
    }
    match json::read_number(baseline, "min_midrun_restore_speedup") {
        Some(floor) => {
            let speedup = cost.midrun_speedup();
            if speedup < floor {
                failures.push(format!(
                    "midrun restore speedup {speedup:.2}x below floor {floor:.2}x \
                     (restore+tick {:.2} us vs midrun restore {:.2} us)",
                    cost.first_tick_us, cost.midrun_us
                ));
            } else {
                notes.push(format!(
                    "midrun restore speedup: {speedup:.2}x >= floor {floor:.2}x"
                ));
            }
        }
        None => notes.push("baseline has no min_midrun_restore_speedup; floor skipped".into()),
    }
    // Fleet throughput floor: the measured campaign must beat the pinned
    // previous-generation figure (`fleet_runs_per_sec_prev`, measured
    // serially on the CI host class) by `min_fleet_speedup`. Thread
    // counts scale throughput, so the gate only engages for serial
    // campaigns — the configuration the reference figure was measured
    // in — and only at [`FLEET_FLOOR_MIN_RUNS`]+ runs, where fixed
    // startup costs are amortized away.
    match (
        json::read_number(baseline, "fleet_runs_per_sec_prev"),
        json::read_number(baseline, "min_fleet_speedup"),
    ) {
        (Some(prev), Some(floor))
            if result.threads == 1 && result.total_runs >= FLEET_FLOOR_MIN_RUNS =>
        {
            let ratio = result.runs_per_sec() / prev.max(1e-9);
            if ratio < floor {
                failures.push(format!(
                    "fleet throughput {:.0} runs/s is {ratio:.2}x the previous {prev:.0} \
                     runs/s, below the {floor:.2}x floor",
                    result.runs_per_sec()
                ));
            } else {
                notes.push(format!(
                    "fleet throughput: {:.0} runs/s = {ratio:.2}x previous ({prev:.0}), \
                     floor {floor:.2}x",
                    result.runs_per_sec()
                ));
            }
        }
        (Some(_), Some(_)) if result.threads != 1 => notes.push(format!(
            "fleet throughput floor skipped: measured with {} threads, reference is serial",
            result.threads
        )),
        (Some(_), Some(_)) => notes.push(format!(
            "fleet throughput floor skipped: {} runs too few to amortize startup \
             (floor engages at {FLEET_FLOOR_MIN_RUNS}+)",
            result.total_runs
        )),
        _ => notes.push("baseline has no fleet throughput floor; skipped".into()),
    }
    if failures.is_empty() {
        Ok(notes)
    } else {
        Err(failures)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_fleet_runs_clean_and_counts_add_up() {
        let result = run_fleet(28, 1);
        // 28 requested / (7 chips * 2 modes) = 2 seeds per chip.
        assert_eq!(result.seeds_per_chip, 2);
        assert_eq!(result.total_runs, 28);
        assert_eq!(result.outcomes.len(), 28);
        assert!(result.failures().is_empty(), "{:#?}", result.failures());
        assert!(failing_records(&result.outcomes).is_empty());
        // Every outcome reduces to a decodable corpus record.
        for o in &result.outcomes {
            let rec = corpus_record(o);
            assert_eq!(CorpusRecord::decode(&rec.encode()).unwrap(), rec);
        }
    }

    /// A plausible measured cost for gate tests: restore 50x cheaper
    /// than boot, midrun restore 3x cheaper than restore+tick.
    fn sample_cost() -> ResetCost {
        ResetCost {
            boot_us: 1000.0,
            restore_us: 20.0,
            midrun_us: 10.0,
            first_tick_us: 30.0,
        }
    }

    #[test]
    fn reset_cost_shows_restore_cheaper_than_boot() {
        let cost = measure_reset_cost(3);
        assert!(cost.boot_us > 0.0);
        assert!(cost.restore_us > 0.0);
        assert!(
            cost.speedup() > 1.0,
            "restore ({:.1} us) not cheaper than boot ({:.1} us)",
            cost.restore_us,
            cost.boot_us
        );
        assert!(
            cost.midrun_speedup() > 1.0,
            "midrun restore ({:.2} us) not cheaper than restore+tick ({:.2} us)",
            cost.midrun_us,
            cost.first_tick_us
        );
    }

    #[test]
    fn check_gates_each_dimension() {
        let result = run_fleet(14, 1);
        let cost = sample_cost();
        let baseline = "{\"min_restore_speedup\": 20.0, \"min_midrun_restore_speedup\": 1.5}";
        let notes = check(&result, &cost, &[], baseline).unwrap();
        assert!(notes.iter().any(|n| n.contains("restore speedup")));
        assert!(notes.iter().any(|n| n.contains("midrun restore speedup")));
        // Equivalence failure fails the gate.
        let eq = vec!["chip X diverged".to_string()];
        assert!(check(&result, &cost, &eq, baseline).is_err());
        // Restore speedup below the floor fails the gate.
        let slow = ResetCost {
            boot_us: 100.0,
            ..sample_cost()
        };
        assert!(check(&result, &slow, &[], baseline).is_err());
        // Midrun speedup below its floor fails the gate.
        let slow_midrun = ResetCost {
            midrun_us: 29.0,
            ..sample_cost()
        };
        assert!(check(&result, &slow_midrun, &[], baseline).is_err());
        // No floors in the baseline: skipped with notes.
        let notes = check(&result, &slow, &[], "{}").unwrap();
        assert!(notes.iter().any(|n| n.contains("skipped")), "{notes:?}");
    }

    #[test]
    fn check_gates_fleet_throughput_against_previous_figure() {
        let mut result = run_fleet(14, 1);
        // Pretend the campaign was large enough to amortize startup —
        // the floor compares runs_per_sec(), which we pin via wall_ms.
        let rate = result.runs_per_sec();
        result.total_runs = FLEET_FLOOR_MIN_RUNS;
        result.wall_ms = FLEET_FLOOR_MIN_RUNS as f64 / rate * 1e3;
        let cost = sample_cost();
        // An absurdly low previous figure: any real campaign clears 1.5x.
        let pass = "{\"fleet_runs_per_sec_prev\": 0.001, \"min_fleet_speedup\": 1.5}";
        let notes = check(&result, &cost, &[], pass).unwrap();
        assert!(notes.iter().any(|n| n.contains("fleet throughput")));
        // An unreachable previous figure fails the gate.
        let fail = "{\"fleet_runs_per_sec_prev\": 1e15, \"min_fleet_speedup\": 1.5}";
        let failures = check(&result, &cost, &[], fail).unwrap_err();
        assert!(failures.iter().any(|f| f.contains("below the 1.50x floor")));
        // A small campaign skips the floor: startup costs are not
        // amortized, so the measured rate is not comparable.
        let small = run_fleet(14, 1);
        let notes = check(&small, &cost, &[], fail).unwrap();
        assert!(
            notes.iter().any(|n| n.contains("too few to amortize")),
            "{notes:?}"
        );
        // A parallel campaign skips the (serial) throughput floor.
        let mut parallel = run_fleet(14, 2);
        parallel.total_runs = FLEET_FLOOR_MIN_RUNS;
        let notes = check(&parallel, &cost, &[], fail).unwrap();
        assert!(
            notes.iter().any(|n| n.contains("reference is serial")),
            "{notes:?}"
        );
    }

    #[test]
    fn profile_summarizes_phases_and_midrun_hits() {
        let result = run_fleet(14, 1);
        let prof = profile(&result);
        // Every run has a nonzero body; percentiles are ordered.
        assert!(prof.run.p50_us > 0.0);
        assert!(prof.run.p99_us >= prof.run.p50_us);
        assert!(prof.restore.p99_us >= prof.restore.p50_us);
        // Uninjected-prefix-safe seeds exist, so some runs resume midrun,
        // and each (chip, mode) slot boots exactly once on one worker.
        assert!(prof.midrun_runs > 0);
        assert_eq!(prof.boots, ALL_CHIPS.len() as u64 * 2);
        assert!(prof.capture_amortized_us > 0.0);
        let table = render_profile(&result, &prof);
        assert!(table.contains("restore"), "{table}");
        assert!(table.contains("mid-run resumes"), "{table}");
    }

    #[test]
    fn priority_from_corpus_round_trips_failing_units() {
        let dir = std::env::temp_dir().join(format!("tt-fleet-prio-{}", std::process::id()));
        let missing = dir.join("absent.bin");
        assert_eq!(priority_from_corpus(&missing).unwrap(), Vec::<Unit>::new());
        let records = vec![
            CorpusRecord {
                chip: 1,
                cold: true,
                killed: false,
                clean: false,
                seed: 42,
                schedule: 0,
                fired: 1,
                restarts: 0,
                recoveries: 0,
                failures: 2,
                trace_len: 10,
                recovery_cycles: 0,
            },
            CorpusRecord {
                chip: 0,
                cold: false,
                killed: true,
                clean: false,
                seed: 7,
                schedule: 0,
                fired: 3,
                restarts: 5,
                recoveries: 5,
                failures: 1,
                trace_len: 20,
                recovery_cycles: 9,
            },
        ];
        let path = dir.join("failures.bin");
        tt_kernel::corpus::write_corpus(&path, &records).unwrap();
        assert_eq!(
            priority_from_corpus(&path).unwrap(),
            vec![(1, 42, true), (0, 7, false)]
        );
        // The prioritized units run first and the campaign stays clean.
        let result = run_fleet_prioritized(7 * 2 * 50, 1, &[(3, 5, true), (0, 0, false)]);
        assert_eq!(result.prioritized, 2);
        let head: Vec<Unit> = result.outcomes[..2]
            .iter()
            .map(|o| (o.chip, o.seed, o.cold))
            .collect();
        assert_eq!(head, vec![(3, 5, true), (0, 0, false)]);
        assert!(result.failures().is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn render_json_round_trips_key_fields() {
        let result = run_fleet(14, 1);
        let prof = profile(&result);
        let cost = ResetCost {
            boot_us: 500.0,
            ..sample_cost()
        };
        let doc = render_json(&result, &cost, &prof, &[], 4);
        assert!(doc.contains("\"experiment\": \"e_fleet\""));
        assert_eq!(json::read_number(&doc, "total_runs"), Some(14.0));
        assert_eq!(json::read_number(&doc, "restore_speedup"), Some(25.0));
        assert_eq!(json::read_number(&doc, "midrun_restore_speedup"), Some(3.0));
        assert_eq!(json::read_number(&doc, "failures"), Some(0.0));
        assert_eq!(
            json::read_number(&doc, "midrun_runs"),
            Some(prof.midrun_runs as f64)
        );
        assert!(doc.contains("\"restore_equivalent\": true"));
        assert!(doc.contains("\"fleet_runs_per_sec\""));
        assert!(doc.contains("\"phases\""));
        assert!(doc.contains("\"p99_us\""));
    }

    #[test]
    fn shrink_failures_is_empty_on_a_clean_fleet() {
        let result = run_fleet(14, 1);
        assert!(shrink_failures(&result.outcomes, 10).is_empty());
    }
}
