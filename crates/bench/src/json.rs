//! Minimal hand-rolled JSON emission for the `BENCH_*.json` artifacts.
//!
//! The benchmark binaries emit small, flat documents; a serialisation
//! dependency would be overkill (and the build is deliberately
//! dependency-frozen), so the helpers here cover exactly what the bins
//! need: escaped strings, f64 formatting that is valid JSON, and a
//! scanner good enough to read back the committed baseline file.

/// Escapes a string for use inside a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Formats an `f64` as a JSON number (JSON has no NaN/Infinity; both map
/// to `null`).
pub fn num(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.2}")
    } else {
        "null".into()
    }
}

/// Extracts the numeric value of `"key": <number>` from a flat JSON
/// document. Good enough for the committed `ci/bench_baseline.json`,
/// which this crate also writes; not a general parser.
pub fn read_number(doc: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\"");
    let at = doc.find(&needle)? + needle.len();
    let rest = doc[at..].trim_start().strip_prefix(':')?.trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == '+' || c == 'e'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_handles_quotes_and_control_chars() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn num_is_always_valid_json() {
        assert_eq!(num(4.0), "4.00");
        assert_eq!(num(f64::NAN), "null");
    }

    #[test]
    fn read_number_round_trips_what_we_write() {
        let doc = format!("{{\n  \"arm_hit\": {},\n  \"riscv_hit\": {}\n}}\n", 4, 0);
        assert_eq!(read_number(&doc, "arm_hit"), Some(4.0));
        assert_eq!(read_number(&doc, "riscv_hit"), Some(0.0));
        assert_eq!(read_number(&doc, "missing"), None);
    }
}
