//! Verification obligations for the monolithic kernel — the
//! "TickTock (Monolithic)" row of Figure 12.
//!
//! The paper reports that verifying the original monolithic abstraction
//! took over five minutes, with more than 90% of the time spent checking
//! `allocate_app_mem_region` (§6.3). The cause is structural: the
//! entangled spec quantifies over the whole allocation parameter space at
//! once. This module reproduces that shape — the allocation obligation
//! walks a dense parameter grid end to end through the hardware model,
//! while every other function carries only cheap builtin obligations.

use crate::cortexm::{CortexMConfig, LegacyCortexM};
use crate::mpu_trait::{BugVariant, LegacyMpu};
use crate::process::{check_disagreement, recompute_breaks};
use tt_contracts::domain::{alloc_param_grid, brk_param_grid};
use tt_contracts::obligation::{CheckResult, Registry};
use tt_contracts::ContractKind;
use tt_hw::mem::{AccessType, Privilege, ProtectionUnit};
use tt_hw::{Permissions, PtrU8};

/// Component name for the Figure 12 grouping.
pub const COMPONENT: &str = "TickTock (Monolithic)";

const RAM_BASE: usize = 0x2000_0000;
const RAM_SIZE: usize = 0x4_0000;

/// Checks the §3.4 postcondition of `allocate_app_mem_region` for one
/// parameter point, end to end: run the allocator, configure the modelled
/// MPU, and probe that no grant byte is user-accessible.
fn check_alloc_point(
    mpu: &LegacyCortexM,
    p: &tt_contracts::domain::AllocParams,
) -> Result<u64, String> {
    let layout = mpu.compute_alloc_layout(p.unalloc_start, p.min_size, p.app_size, p.kernel_size);
    let mut config = CortexMConfig::default();
    let Some((start, size)) = mpu.allocate_app_mem_region(
        PtrU8::new(p.unalloc_start),
        p.unalloc_size,
        p.min_size,
        p.app_size,
        p.kernel_size,
        Permissions::ReadWriteOnly,
        &mut config,
    ) else {
        return Ok(1); // Refusing the allocation is always safe.
    };

    // Specification-level postcondition (the explicated contract).
    if !layout.isolation_holds() {
        return Err(format!(
            "postcondition: subregs_enabled_end {:#x} > kernel_mem_break {:#x} for {p:?}",
            layout.subregs_enabled_end, layout.kernel_mem_break
        ));
    }

    // Hardware-level check: probe the grant region and beyond.
    mpu.configure_mpu(&config);
    let hw = mpu.hardware();
    let hw = hw.borrow();
    let mut cases = 1u64;
    let grant_lo = layout.kernel_mem_break;
    let grant_hi = start.as_usize() + size;
    let mut probe = grant_lo;
    while probe < grant_hi {
        if hw
            .check(probe, 1, AccessType::Write, Privilege::Unprivileged)
            .allowed()
        {
            return Err(format!("grant byte {probe:#x} user-writable for {p:?}"));
        }
        probe += 32;
        cases += 1;
    }
    // Bytes below the block must be inaccessible too.
    for below in [
        start.as_usize().saturating_sub(4),
        RAM_BASE.saturating_sub(0),
    ] {
        if below < start.as_usize()
            && hw
                .check(below, 1, AccessType::Read, Privilege::Unprivileged)
                .allowed()
        {
            return Err(format!(
                "byte below block {below:#x} user-readable for {p:?}"
            ));
        }
        cases += 1;
    }
    Ok(cases)
}

/// Registers the monolithic-kernel obligations for the given variant.
///
/// With [`BugVariant::Fixed`] everything verifies (slowly — the point of
/// the Fig. 12 comparison); with [`BugVariant::Buggy`] the allocation and
/// brk obligations are refuted, reproducing the paper's bug discoveries.
pub fn register_obligations(registry: &mut Registry, variant: BugVariant, density: usize) {
    let d = density.max(1);

    // The monster obligation: the entangled allocate_app_mem_region spec.
    registry.add_fn(
        COMPONENT,
        "CortexM::allocate_app_mem_region",
        ContractKind::Post,
        move || {
            let mpu = LegacyCortexM::with_fresh_hardware(variant);
            let mut cases = 0u64;
            for p in alloc_param_grid(RAM_BASE, RAM_SIZE, d) {
                match check_alloc_point(&mpu, &p) {
                    Ok(c) => cases += c,
                    Err(counterexample) => return CheckResult::Refuted { counterexample },
                }
            }
            CheckResult::Verified { cases }
        },
    );

    // update_app_mem_region: precondition (no underflow) and postcondition
    // (never exposes grant memory) over the brk domain.
    registry.add_fn(
        COMPONENT,
        "CortexM::update_app_mem_region",
        ContractKind::Post,
        move || {
            let mpu = LegacyCortexM::with_fresh_hardware(variant);
            let mut config = CortexMConfig::default();
            let (start, size) = mpu
                .allocate_app_mem_region(
                    PtrU8::new(RAM_BASE),
                    RAM_SIZE,
                    4096,
                    2048,
                    1024,
                    Permissions::ReadWriteOnly,
                    &mut config,
                )
                .expect("baseline allocation");
            let kernel_break = PtrU8::new(start.as_usize() + size - 1024);
            let mut cases = 0u64;
            for brk in brk_param_grid(start.as_usize(), size, d) {
                let saved = config.clone();
                let result = mpu.update_app_mem_region(
                    PtrU8::new(brk),
                    kernel_break,
                    Permissions::ReadWriteOnly,
                    &mut config,
                );
                // Flux's implicit obligation: the arithmetic inside must not
                // underflow regardless of the (attacker-controlled) input.
                let violations = tt_contracts::take_violations();
                if let Some(v) = violations.first() {
                    return CheckResult::Refuted {
                        counterexample: format!("brk = {brk:#x}: {v}"),
                    };
                }
                if result.is_ok() {
                    mpu.configure_mpu(&config);
                    let hw = mpu.hardware();
                    let hw = hw.borrow();
                    if hw
                        .check(
                            kernel_break.as_usize(),
                            1,
                            AccessType::Write,
                            Privilege::Unprivileged,
                        )
                        .allowed()
                    {
                        return CheckResult::Refuted {
                            counterexample: format!("brk = {brk:#x} exposed grant start"),
                        };
                    }
                } else {
                    config = saved;
                }
                cases += 1;
            }
            CheckResult::Verified { cases }
        },
    );

    // Disagreement audit: in the fixed monolithic kernel the loader's
    // recomputation must at least stay within hardware-accessible bounds
    // (app_break <= hardware end); the granular kernel removes the
    // recomputation entirely.
    registry.add_fn(
        COMPONENT,
        "process_loader::recompute_breaks",
        ContractKind::Invariant,
        move || {
            let mpu = LegacyCortexM::with_fresh_hardware(variant);
            let mut cases = 0u64;
            for p in alloc_param_grid(RAM_BASE, RAM_SIZE, 1) {
                let layout = mpu.compute_alloc_layout(
                    p.unalloc_start,
                    p.min_size,
                    p.app_size,
                    p.kernel_size,
                );
                let rec = recompute_breaks(
                    layout.region_start,
                    layout.mem_size_po2,
                    p.app_size,
                    p.kernel_size,
                );
                if let Some(d) = check_disagreement(&layout, &rec) {
                    // Divergence is tolerable only while it stays below the
                    // kernel break; otherwise the loader has lost track of
                    // what the MPU exposes.
                    if d.hw_accessible_end > layout.kernel_mem_break {
                        return CheckResult::Refuted {
                            counterexample: format!(
                                "loader believes app ends at {:#x} but MPU admits up to {:#x}, \
                                 past the grant start {:#x}",
                                d.loader_app_break, d.hw_accessible_end, layout.kernel_mem_break
                            ),
                        };
                    }
                }
                cases += 1;
            }
            CheckResult::Verified { cases }
        },
    );

    // The rest of the monolithic kernel's functions: builtin safety only.
    registry.add_builtin_safety(
        COMPONENT,
        &[
            "CortexM::allocate_flash_region",
            "CortexM::configure_mpu",
            "CortexM::srd_masks_loop",
            "CortexM::write_ram_regions",
            "CortexMConfig::ram_region_geometry",
            "CortexMConfig::default",
            "LegacyRegion::default",
            "Riscv::allocate_app_mem_region",
            "Riscv::update_app_mem_region",
            "Riscv::allocate_flash_region",
            "Riscv::configure_mpu",
            "Riscv::stage_tor",
            "PmpConfig::default",
            "encode_permissions(arm)",
            "encode_permissions(pmp)",
            "recompute_breaks",
            "check_disagreement",
            "AllocLayout::isolation_holds",
            "legacy_process::create",
            "legacy_process::restart_process",
            "Grant::ensure",
            "Grant::enter",
            "legacy_process::brk",
            "legacy_process::sbrk",
            "legacy_process::build_readonly_buffer",
            "legacy_process::build_readwrite_buffer",
            "legacy_process::setup_mpu",
            "legacy_process::allocate_grant",
            // The checked-arithmetic contract sites of the monolithic
            // allocator (`legacy::alloc` / `legacy::update` in cortexm.rs,
            // `legacy-pmp::alloc` in riscv.rs), registered under their
            // site names so the `tt-audit` cross-check sees them
            // discharged.
            "legacy::alloc",
            "legacy::update",
            "legacy-pmp::alloc",
        ],
    );

    // Trusted functions (Fig. 10 reports 14 kernel + driver functions
    // trusted in this era's code; representative entries).
    for f in ["fault_fmt", "panic_print", "debug_writer"] {
        registry.add_trusted(COMPONENT, f, ContractKind::Post);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tt_contracts::verifier::Verifier;

    #[test]
    fn fixed_monolithic_verifies() {
        let mut r = Registry::new();
        register_obligations(&mut r, BugVariant::Fixed, 1);
        let report = Verifier::new().verify(&r);
        assert!(
            report.all_verified(),
            "refuted: {:?}",
            report
                .refuted()
                .iter()
                .map(|f| (&f.function, &f.refutations))
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn buggy_monolithic_is_refuted_on_alloc_and_update() {
        let mut r = Registry::new();
        register_obligations(&mut r, BugVariant::Buggy, 1);
        let report = Verifier::new().verify(&r);
        let refuted: Vec<&str> = report
            .refuted()
            .iter()
            .map(|f| f.function.as_str())
            .collect();
        assert!(
            refuted.contains(&"CortexM::allocate_app_mem_region"),
            "got {refuted:?}"
        );
        assert!(
            refuted.contains(&"CortexM::update_app_mem_region"),
            "got {refuted:?}"
        );
    }

    #[test]
    fn alloc_obligation_dominates_verification_time() {
        // The paper: "Over 90% of the time verifying the original Tock code
        // was spent checking allocate_app_mem_region". Reproduce the shape:
        // the alloc obligation is the slowest function in the component.
        let mut r = Registry::new();
        register_obligations(&mut r, BugVariant::Fixed, 1);
        let report = Verifier::new().verify(&r);
        let stats = report.component_stats(COMPONENT);
        let alloc = report
            .functions
            .iter()
            .find(|f| f.function == "CortexM::allocate_app_mem_region")
            .unwrap();
        assert_eq!(alloc.duration, stats.max);
        assert!(stats.total >= alloc.duration);
    }
}
