//! Tock's original monolithic MPU abstraction (paper Fig. 3a).
//!
//! A single high-level trait exposes operations that *allocate* and
//! *update* memory regions for a process. The paper shows this design
//! entangles hardware constraints with kernel logic and discards computed
//! values, producing the *disagreement* between the kernel's view and the
//! hardware-enforced layout (§3.2).

use tt_hw::{Permissions, PtrU8};

/// Error from the legacy allocation path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LegacyMpuError {
    /// The request cannot be satisfied within the available memory.
    OutOfMemory,
    /// Parameters violate the hardware constraints.
    InvalidParameters,
}

/// The monolithic MPU interface, as in Fig. 3a.
pub trait LegacyMpu {
    /// Per-process MPU configuration (Fig. 3a's associated `MpuConfig`).
    type MpuConfig: Default + Clone;

    /// Allocates application memory when Tock first loads a process.
    ///
    /// Returns only the start and total size of the process memory block —
    /// the intermediate values delineating process- and kernel-accessible
    /// memory are **discarded**, which is exactly the paper's
    /// *disagreement* problem: callers must recompute them.
    #[allow(clippy::too_many_arguments)]
    fn allocate_app_mem_region(
        &self,
        unalloc_start: PtrU8,
        unalloc_size: usize,
        min_size: usize,
        app_size: usize,
        kernel_size: usize,
        permissions: Permissions,
        config: &mut Self::MpuConfig,
    ) -> Option<(PtrU8, usize)>;

    /// Updates the MPU configuration when the application grows or shrinks
    /// its memory via `brk`/`sbrk`.
    fn update_app_mem_region(
        &self,
        new_app_break: PtrU8,
        kernel_break: PtrU8,
        permissions: Permissions,
        config: &mut Self::MpuConfig,
    ) -> Result<(), LegacyMpuError>;

    /// Allocates the flash (code) region for the process.
    fn allocate_flash_region(
        &self,
        flash_start: PtrU8,
        flash_size: usize,
        permissions: Permissions,
        config: &mut Self::MpuConfig,
    ) -> Option<()>;

    /// Writes the configuration into the hardware.
    fn configure_mpu(&self, config: &Self::MpuConfig);
}

/// Which historical variant of the driver to instantiate.
///
/// `Buggy` is the faithful port of the code the paper verified and found
/// broken; `Fixed` applies the upstreamed fixes (tock#4366, tock#2173,
/// the brk validation of §2.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BugVariant {
    /// The pre-verification implementation with the historical bugs.
    Buggy,
    /// The post-verification implementation with the upstreamed fixes.
    #[default]
    Fixed,
}
