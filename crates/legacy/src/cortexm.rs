//! Faithful port of Tock's original Cortex-M memory allocation (Fig. 4a).
//!
//! This is the code the paper verified and found broken. The `Buggy`
//! variant reproduces the upstream implementation including:
//!
//! * **BUG1** (tock#4366, §3.4): when the enabled subregions overlap the
//!   kernel grant region, the readjustment doubles `region_size` but *not*
//!   `mem_size_po2`, so "in most scenarios, the MPU enforced memory still
//!   overlaps the grant region owned by the kernel".
//! * **BUG3** (§2.2): `update_app_mem_region` computes
//!   `num_enabled_subregions0 - 1`, which underflows when a malicious
//!   `brk` argument makes the requested break precede the region start.
//!
//! The `Fixed` variant applies the upstreamed fixes. Both run against the
//! same [`tt_hw::cortexm::CortexMpu`] model, so the bugs are observable as
//! real isolation breaks, not just failed contracts.

use crate::mpu_trait::{BugVariant, LegacyMpu, LegacyMpuError};
use std::cell::RefCell;
use std::cmp;
use std::rc::Rc;
use tt_contracts::math::closest_power_of_two_usize;
use tt_contracts::{checked_add, checked_mul, checked_sub};
use tt_hw::cortexm::mpu::{size_to_rasr_field, RegionAttributes, RegionBaseAddress};
use tt_hw::cortexm::CortexMpu;
use tt_hw::cycles::{charge, charge_n, Cost};
use tt_hw::{Permissions, PtrU8};

/// Region index used for process flash.
pub const FLASH_REGION: usize = 2;
/// Region indices used for process RAM (two regions spanning 16 subregions).
pub const RAM_REGION_0: usize = 0;
/// Second RAM region.
pub const RAM_REGION_1: usize = 1;

/// Encodes logical permissions into the (AP, XN) fields for user access.
pub fn encode_permissions(perms: Permissions) -> (u32, u32) {
    match perms {
        Permissions::ReadWriteExecute => (0b011, 0),
        Permissions::ReadWriteOnly => (0b011, 1),
        Permissions::ReadExecuteOnly => (0b110, 0),
        Permissions::ReadOnly => (0b110, 1),
        Permissions::ExecuteOnly => (0b110, 0),
    }
}

/// One stored region of the legacy per-process configuration.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LegacyRegion {
    /// RBAR value (without VALID/REGION fields).
    pub rbar: u32,
    /// RASR value.
    pub rasr: u32,
    /// Whether this slot is in use.
    pub set: bool,
}

/// The legacy `MpuConfig`: eight raw register pairs.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CortexMConfig {
    /// The eight region slots.
    pub regions: [LegacyRegion; 8],
}

impl CortexMConfig {
    /// Recovers (start, region_size) of the process RAM block from the raw
    /// registers of RAM region 0 — the legacy code path that *re-derives*
    /// state from hardware encodings instead of keeping it.
    pub fn ram_region_geometry(&self) -> Option<(usize, usize)> {
        let r = self.regions[RAM_REGION_0];
        if !r.set {
            return None;
        }
        charge_n(Cost::Load, 2);
        charge_n(Cost::Alu, 4);
        let start = (r.rbar & 0xFFFF_FFE0) as usize;
        let exp = RegionAttributes::SIZE.read(r.rasr) + 1;
        Some((start, 1usize << exp))
    }
}

/// Intermediate values of the Fig. 4a computation, surfaced for
/// specification (the paper's "Step 1: Explication", §3.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AllocLayout {
    /// Start of the (aligned) process memory block.
    pub region_start: usize,
    /// Size of each of the two MPU regions.
    pub region_size: usize,
    /// Total block size the kernel is told about.
    pub mem_size_po2: usize,
    /// Number of enabled subregions (of 16).
    pub num_enabled_subregs: usize,
    /// End address of MPU-enabled (process-accessible) memory.
    pub subregs_enabled_end: usize,
    /// Start (lowest address) of the kernel-owned grant region.
    pub kernel_mem_break: usize,
}

impl AllocLayout {
    /// The isolation postcondition the paper added in §3.4: the last
    /// enabled subregion must never exceed the start of the grant region.
    pub fn isolation_holds(&self) -> bool {
        self.subregs_enabled_end <= self.kernel_mem_break
    }
}

/// The legacy Cortex-M MPU driver.
#[derive(Debug, Clone)]
pub struct LegacyCortexM {
    variant: BugVariant,
    hardware: Rc<RefCell<CortexMpu>>,
}

impl LegacyCortexM {
    /// Creates a driver over the given hardware instance.
    pub fn new(variant: BugVariant, hardware: Rc<RefCell<CortexMpu>>) -> Self {
        Self { variant, hardware }
    }

    /// Creates a driver with fresh, private hardware (testing convenience).
    pub fn with_fresh_hardware(variant: BugVariant) -> Self {
        Self::new(variant, Rc::new(RefCell::new(CortexMpu::new())))
    }

    /// Returns the hardware handle.
    pub fn hardware(&self) -> Rc<RefCell<CortexMpu>> {
        Rc::clone(&self.hardware)
    }

    /// Returns the configured bug variant.
    pub fn variant(&self) -> BugVariant {
        self.variant
    }

    /// The Fig. 4a computation, line for line, surfacing the intermediates.
    ///
    /// Cycle charges model the Cortex-M4 cost of the original code: the
    /// divides and modulos are real hardware divides, and the subregion
    /// masks are later built with loops.
    pub fn compute_alloc_layout(
        &self,
        unalloc_start: usize,
        min_size: usize,
        app_size: usize,
        kernel_size: usize,
    ) -> AllocLayout {
        // Make sure there is enough memory for app memory and kernel memory.
        charge_n(Cost::Alu, 2);
        let mem_size = cmp::max(
            min_size,
            checked_add("legacy::alloc", app_size, kernel_size),
        );
        charge_n(Cost::Alu, 6); // closest_power_of_two bit smear.
        let mut mem_size_po2 = closest_power_of_two_usize(mem_size);

        // The region should start as close as possible to unallocated memory.
        let mut region_start = unalloc_start;
        charge(Cost::Div);
        let mut region_size = mem_size_po2 / 2;

        // If the start and length don't align, move the region up.
        charge(Cost::Div);
        charge(Cost::Branch);
        if !region_start.is_multiple_of(region_size) {
            charge_n(Cost::Alu, 2);
            charge(Cost::Div);
            region_start = checked_add(
                "legacy::alloc",
                region_start,
                region_size - (region_start % region_size),
            );
        }

        charge_n(Cost::Div, 2);
        charge_n(Cost::Alu, 2);
        let mut num_enabled_subregs = checked_mul("legacy::alloc", app_size, 8) / region_size + 1;
        let subreg_size = region_size / 8;

        // End address of enabled subregions and initial kernel memory break.
        charge_n(Cost::Alu, 3);
        let mut subregs_enabled_end = checked_add(
            "legacy::alloc",
            region_start,
            checked_mul("legacy::alloc", num_enabled_subregs, subreg_size),
        );
        let kernel_mem_break = checked_sub(
            "legacy::alloc",
            checked_add("legacy::alloc", region_start, mem_size_po2),
            kernel_size,
        );

        charge(Cost::Branch);
        if subregs_enabled_end > kernel_mem_break {
            charge(Cost::Alu);
            region_size *= 2;
            charge(Cost::Div);
            charge(Cost::Branch);
            if !region_start.is_multiple_of(region_size) {
                charge_n(Cost::Alu, 2);
                charge(Cost::Div);
                region_start = checked_add(
                    "legacy::alloc",
                    region_start,
                    region_size - (region_start % region_size),
                );
            }
            charge_n(Cost::Div, 2);
            charge_n(Cost::Alu, 2);
            num_enabled_subregs = checked_mul("legacy::alloc", app_size, 8) / region_size + 1;
            subregs_enabled_end = checked_add(
                "legacy::alloc",
                region_start,
                checked_mul("legacy::alloc", num_enabled_subregs, region_size / 8),
            );
            match self.variant {
                BugVariant::Buggy => {
                    // BUG1: the comment in upstream Tock says the total size
                    // must double too, but the code never did — so the two
                    // MPU regions extend past `mem_size_po2` and the enabled
                    // subregions can still cover the grant region.
                }
                BugVariant::Fixed => {
                    // The verified fix (tock#4366): double the block size so
                    // the layout and the hardware agree again.
                    charge(Cost::Alu);
                    mem_size_po2 *= 2;
                }
            }
        }

        let kernel_mem_break = checked_sub(
            "legacy::alloc",
            checked_add("legacy::alloc", region_start, mem_size_po2),
            kernel_size,
        );

        AllocLayout {
            region_start,
            region_size,
            mem_size_po2,
            num_enabled_subregs,
            subregs_enabled_end,
            kernel_mem_break,
        }
    }

    /// Builds the SRD disable masks for the two RAM regions, with the
    /// original loop-based implementation (cycle-charged per iteration; the
    /// paper notes TickTock replaces these loops with "verified bitwise
    /// arithmetic", one source of the Fig. 11 `brk` speedup).
    pub fn srd_masks_loop(num_enabled_subregs: usize) -> (u32, u32) {
        let mut srd0 = 0u32;
        let mut srd1 = 0u32;
        for i in 0..8 {
            charge(Cost::Branch);
            if i >= num_enabled_subregs {
                charge(Cost::Alu);
                srd0 |= 1 << i;
            }
        }
        for i in 0..8 {
            charge(Cost::Branch);
            if i + 8 >= num_enabled_subregs {
                charge(Cost::Alu);
                srd1 |= 1 << i;
            }
        }
        (srd0, srd1)
    }

    fn write_ram_regions(
        &self,
        config: &mut CortexMConfig,
        layout: &AllocLayout,
        permissions: Permissions,
    ) {
        let (ap, xn) = encode_permissions(permissions);
        let (srd0, srd1) = Self::srd_masks_loop(layout.num_enabled_subregs);
        let size_field = size_to_rasr_field(layout.region_size.max(32));
        let mk_rasr = |srd: u32, enable: u32| {
            charge_n(Cost::Alu, 4);
            (RegionAttributes::ENABLE.val(enable)
                + RegionAttributes::SIZE.val(size_field)
                + RegionAttributes::SRD.val(srd)
                + RegionAttributes::AP.val(ap)
                + RegionAttributes::XN.val(xn))
            .value()
        };
        charge_n(Cost::Store, 4);
        config.regions[RAM_REGION_0] = LegacyRegion {
            rbar: (layout.region_start as u32) & 0xFFFF_FFE0,
            rasr: mk_rasr(srd0, 1),
            set: true,
        };
        // The second region is only enabled when subregions spill into it.
        let second_enabled = layout.num_enabled_subregs > 8;
        config.regions[RAM_REGION_1] = LegacyRegion {
            rbar: ((layout.region_start + layout.region_size) as u32) & 0xFFFF_FFE0,
            rasr: mk_rasr(srd1, u32::from(second_enabled)),
            set: second_enabled,
        };
    }
}

impl LegacyMpu for LegacyCortexM {
    type MpuConfig = CortexMConfig;

    fn allocate_app_mem_region(
        &self,
        unalloc_start: PtrU8,
        unalloc_size: usize,
        min_size: usize,
        app_size: usize,
        kernel_size: usize,
        permissions: Permissions,
        config: &mut CortexMConfig,
    ) -> Option<(PtrU8, usize)> {
        if app_size == 0 || kernel_size == 0 {
            return None;
        }
        let layout =
            self.compute_alloc_layout(unalloc_start.as_usize(), min_size, app_size, kernel_size);

        // Bounds check against the available pool.
        charge_n(Cost::Alu, 2);
        charge(Cost::Branch);
        if layout.region_start + layout.mem_size_po2 > unalloc_start.as_usize() + unalloc_size {
            return None;
        }

        self.write_ram_regions(config, &layout, permissions);
        Some((PtrU8::new(layout.region_start), layout.mem_size_po2))
    }

    fn update_app_mem_region(
        &self,
        new_app_break: PtrU8,
        kernel_break: PtrU8,
        permissions: Permissions,
        config: &mut CortexMConfig,
    ) -> Result<(), LegacyMpuError> {
        // Re-derive the block geometry from the raw registers — the
        // *disagreement* pattern: the kernel no longer has these values.
        let (region_start, region_size) = config
            .ram_region_geometry()
            .ok_or(LegacyMpuError::InvalidParameters)?;

        if self.variant == BugVariant::Fixed {
            // The §2.2 fix: validate the syscall-controlled break before any
            // arithmetic. The buggy variant omits this, so a malicious
            // `brk(addr < memory_start)` reaches the subtraction below.
            charge_n(Cost::Branch, 2);
            if new_app_break.as_usize() <= region_start
                || new_app_break.as_usize() > kernel_break.as_usize()
            {
                return Err(LegacyMpuError::InvalidParameters);
            }
        }

        // app_size = new_app_break - region_start: underflows for a
        // malicious break below the region start (BUG3; Flux flagged the
        // same expression as `num_enabled_subregions0 - 1`).
        charge(Cost::Alu);
        let app_size = checked_sub("legacy::update", new_app_break.as_usize(), region_start);

        charge_n(Cost::Div, 2);
        charge_n(Cost::Alu, 2);
        let num_enabled_subregs = checked_mul("legacy::update", app_size, 8) / region_size + 1;
        let subreg_size = region_size / 8;
        charge_n(Cost::Alu, 2);
        let subregs_enabled_end = checked_add(
            "legacy::update",
            region_start,
            checked_mul("legacy::update", num_enabled_subregs, subreg_size),
        );

        charge(Cost::Branch);
        if subregs_enabled_end > kernel_break.as_usize() {
            return Err(LegacyMpuError::OutOfMemory);
        }

        // num_enabled_subregions0 - 1: the exact expression Flux flagged as
        // potentially underflowing to usize::MAX (§2.2). With num == 0
        // (possible in the buggy variant when app_size wrapped to 0), the
        // subtraction underflows.
        charge_n(Cost::Alu, 2);
        let num0 = cmp::min(num_enabled_subregs, 8);
        let _last_enabled_subregion0 = checked_sub("legacy::update", num0, 1);

        let layout = AllocLayout {
            region_start,
            region_size,
            mem_size_po2: region_size * 2,
            num_enabled_subregs,
            subregs_enabled_end,
            kernel_mem_break: kernel_break.as_usize(),
        };
        self.write_ram_regions(config, &layout, permissions);
        Ok(())
    }

    fn allocate_flash_region(
        &self,
        flash_start: PtrU8,
        flash_size: usize,
        permissions: Permissions,
        config: &mut CortexMConfig,
    ) -> Option<()> {
        // Flash placement in Tock guarantees power-of-two size and aligned
        // start; reject anything else like the hardware would.
        charge_n(Cost::Alu, 3);
        if !tt_contracts::math::is_pow2(flash_size)
            || flash_size < 32
            || !flash_start.as_usize().is_multiple_of(flash_size)
        {
            return None;
        }
        let (ap, xn) = encode_permissions(permissions);
        charge_n(Cost::Alu, 4);
        charge(Cost::Store);
        config.regions[FLASH_REGION] = LegacyRegion {
            rbar: (flash_start.as_usize() as u32) & 0xFFFF_FFE0,
            rasr: (RegionAttributes::ENABLE.val(1)
                + RegionAttributes::SIZE.val(size_to_rasr_field(flash_size))
                + RegionAttributes::AP.val(ap)
                + RegionAttributes::XN.val(xn))
            .value(),
            set: true,
        };
        Some(())
    }

    // TRUSTED: register write-out (TCB, §6.1).
    fn configure_mpu(&self, config: &CortexMConfig) {
        let mut hw = self.hardware.borrow_mut();
        for (i, region) in config.regions.iter().enumerate() {
            if region.set {
                hw.write_region(i, region.rbar, region.rasr);
            } else {
                // Disable the slot so stale regions never linger.
                let rbar = RegionBaseAddress::VALID.val(1).value()
                    | RegionBaseAddress::REGION.val(i as u32).value();
                hw.write_rbar(rbar);
                hw.write_rasr(0);
            }
        }
        hw.write_ctrl(true, true);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tt_hw::mem::{AccessType, Privilege, ProtectionUnit};

    /// The concrete BUG1 trigger from the paper's Fig. 2 discussion: a
    /// misaligned start forces the region up, pushing the enabled
    /// subregions past the grant start.
    /// Traced: mem_size_po2 = 4096, region_size = 2048, the misaligned
    /// start realigns to 0x2000_0800; 15 enabled subregions of 256 B end at
    /// +3840 > kernel_mem_break (+3596), triggering the doubling branch.
    /// After doubling, the 8 enabled 512 B subregions end at +4096, still
    /// past the (not-recomputed) break at +3596 — BUG1.
    fn bug1_params() -> (usize, usize, usize, usize) {
        // (unalloc_start, min_size, app_size, kernel_size)
        (0x2000_0100, 0, 3590, 500)
    }

    #[test]
    fn buggy_alloc_violates_isolation_postcondition() {
        let mpu = LegacyCortexM::with_fresh_hardware(BugVariant::Buggy);
        let (start, min, app, kernel) = bug1_params();
        let layout = mpu.compute_alloc_layout(start, min, app, kernel);
        assert!(
            !layout.isolation_holds(),
            "expected subregion overlap: {layout:?}"
        );
    }

    #[test]
    fn fixed_alloc_satisfies_isolation_postcondition() {
        let mpu = LegacyCortexM::with_fresh_hardware(BugVariant::Fixed);
        let (start, min, app, kernel) = bug1_params();
        let layout = mpu.compute_alloc_layout(start, min, app, kernel);
        assert!(layout.isolation_holds(), "fix failed: {layout:?}");
    }

    #[test]
    fn buggy_alloc_lets_process_touch_grant_memory() {
        // End-to-end: configure real (modelled) hardware from the buggy
        // layout and show an unprivileged access inside the grant region is
        // admitted — the isolation break, observable.
        let mpu = LegacyCortexM::with_fresh_hardware(BugVariant::Buggy);
        let (start, min, app, kernel) = bug1_params();
        let layout = mpu.compute_alloc_layout(start, min, app, kernel);
        let mut config = CortexMConfig::default();
        let got = mpu.allocate_app_mem_region(
            PtrU8::new(start),
            0x4_0000,
            min,
            app,
            kernel,
            Permissions::ReadWriteOnly,
            &mut config,
        );
        assert!(got.is_some());
        mpu.configure_mpu(&config);
        let hw = mpu.hardware();
        let hw = hw.borrow();
        // The grant region starts at kernel_mem_break; the first grant byte
        // must NOT be user-accessible, but with BUG1 it is.
        let grant_byte = layout.kernel_mem_break;
        assert!(
            hw.check(grant_byte, 1, AccessType::Write, Privilege::Unprivileged)
                .allowed(),
            "expected the bug to expose grant memory at {grant_byte:#x}"
        );
    }

    #[test]
    fn fixed_alloc_protects_grant_memory() {
        let mpu = LegacyCortexM::with_fresh_hardware(BugVariant::Fixed);
        let (start, min, app, kernel) = bug1_params();
        let layout = mpu.compute_alloc_layout(start, min, app, kernel);
        let mut config = CortexMConfig::default();
        mpu.allocate_app_mem_region(
            PtrU8::new(start),
            0x4_0000,
            min,
            app,
            kernel,
            Permissions::ReadWriteOnly,
            &mut config,
        )
        .unwrap();
        mpu.configure_mpu(&config);
        let hw = mpu.hardware();
        let hw = hw.borrow();
        for probe in [layout.kernel_mem_break, layout.kernel_mem_break + 512] {
            assert!(
                !hw.check(probe, 1, AccessType::Write, Privilege::Unprivileged)
                    .allowed(),
                "grant byte {probe:#x} reachable in fixed variant"
            );
        }
        // The app-accessible range still works.
        assert!(hw
            .check(
                layout.region_start,
                4,
                AccessType::Read,
                Privilege::Unprivileged
            )
            .allowed());
    }

    #[test]
    fn aligned_start_avoids_bug1() {
        // When no realignment happens, even the buggy code is correct —
        // the bug needs the region_start shift (§3.4).
        let mpu = LegacyCortexM::with_fresh_hardware(BugVariant::Buggy);
        let layout = mpu.compute_alloc_layout(0x2000_0000, 0, 2048 + 512, 1024);
        assert!(layout.isolation_holds(), "{layout:?}");
    }

    #[test]
    fn update_underflows_on_malicious_break_in_buggy_variant() {
        let mpu = LegacyCortexM::with_fresh_hardware(BugVariant::Buggy);
        let mut config = CortexMConfig::default();
        mpu.allocate_app_mem_region(
            PtrU8::new(0x2000_0000),
            0x4_0000,
            4096,
            2048,
            1024,
            Permissions::ReadWriteOnly,
            &mut config,
        )
        .unwrap();
        let violations = tt_contracts::with_mode(tt_contracts::Mode::Observe, || {
            // Malicious brk: a break below the region start.
            let _ = mpu.update_app_mem_region(
                PtrU8::new(0x1000_0000),
                PtrU8::new(0x2000_0F00),
                Permissions::ReadWriteOnly,
                &mut config,
            );
            tt_contracts::take_violations()
        });
        assert!(
            violations.iter().any(|v| v.site == "legacy::update"),
            "expected underflow obligation, got {violations:?}"
        );
    }

    #[test]
    fn fixed_update_rejects_malicious_break() {
        let mpu = LegacyCortexM::with_fresh_hardware(BugVariant::Fixed);
        let mut config = CortexMConfig::default();
        mpu.allocate_app_mem_region(
            PtrU8::new(0x2000_0000),
            0x4_0000,
            4096,
            2048,
            1024,
            Permissions::ReadWriteOnly,
            &mut config,
        )
        .unwrap();
        let err = mpu.update_app_mem_region(
            PtrU8::new(0x1000_0000),
            PtrU8::new(0x2000_0F00),
            Permissions::ReadWriteOnly,
            &mut config,
        );
        assert_eq!(err, Err(LegacyMpuError::InvalidParameters));
        assert_eq!(tt_contracts::violation_count(), 0);
    }

    #[test]
    fn update_grows_accessible_range() {
        let mpu = LegacyCortexM::with_fresh_hardware(BugVariant::Fixed);
        let mut config = CortexMConfig::default();
        let (start, size) = mpu
            .allocate_app_mem_region(
                PtrU8::new(0x2000_0000),
                0x4_0000,
                4096,
                1024,
                1024,
                Permissions::ReadWriteOnly,
                &mut config,
            )
            .unwrap();
        let kernel_break = PtrU8::new(start.as_usize() + size - 1024);
        mpu.update_app_mem_region(
            start.offset(2048),
            kernel_break,
            Permissions::ReadWriteOnly,
            &mut config,
        )
        .unwrap();
        mpu.configure_mpu(&config);
        let hw = mpu.hardware();
        let hw = hw.borrow();
        assert!(hw
            .check(
                start.as_usize() + 2040,
                4,
                AccessType::Write,
                Privilege::Unprivileged
            )
            .allowed());
        assert!(!hw
            .check(
                kernel_break.as_usize(),
                4,
                AccessType::Write,
                Privilege::Unprivileged
            )
            .allowed());
    }

    #[test]
    fn flash_region_requires_pow2_aligned() {
        let mpu = LegacyCortexM::with_fresh_hardware(BugVariant::Fixed);
        let mut config = CortexMConfig::default();
        assert!(mpu
            .allocate_flash_region(
                PtrU8::new(0x0004_0000),
                0x8000,
                Permissions::ReadExecuteOnly,
                &mut config
            )
            .is_some());
        assert!(mpu
            .allocate_flash_region(
                PtrU8::new(0x0004_0100), // Misaligned for 32 KiB.
                0x8000,
                Permissions::ReadExecuteOnly,
                &mut config
            )
            .is_none());
        assert!(mpu
            .allocate_flash_region(
                PtrU8::new(0x0004_0000),
                0x7000, // Not a power of two.
                Permissions::ReadExecuteOnly,
                &mut config
            )
            .is_none());
    }

    #[test]
    fn srd_loop_masks_match_bitwise_reference() {
        for num in 0..=16usize {
            let (srd0, srd1) = LegacyCortexM::srd_masks_loop(num);
            let num0 = num.min(8) as u32;
            let num1 = num.saturating_sub(8) as u32;
            let expect0 = if num0 >= 8 { 0 } else { (!0u32 << num0) & 0xFF };
            let expect1 = if num1 >= 8 { 0 } else { (!0u32 << num1) & 0xFF };
            assert_eq!((srd0, srd1), (expect0, expect1), "num = {num}");
        }
    }

    #[test]
    fn geometry_roundtrip_through_registers() {
        let mpu = LegacyCortexM::with_fresh_hardware(BugVariant::Fixed);
        let mut config = CortexMConfig::default();
        let (start, _size) = mpu
            .allocate_app_mem_region(
                PtrU8::new(0x2000_0000),
                0x4_0000,
                8192,
                4096,
                1024,
                Permissions::ReadWriteOnly,
                &mut config,
            )
            .unwrap();
        let (g_start, g_size) = config.ram_region_geometry().unwrap();
        assert_eq!(g_start, start.as_usize());
        assert!(g_size.is_power_of_two());
    }

    #[test]
    fn zero_sizes_rejected() {
        let mpu = LegacyCortexM::with_fresh_hardware(BugVariant::Fixed);
        let mut config = CortexMConfig::default();
        assert!(mpu
            .allocate_app_mem_region(
                PtrU8::new(0x2000_0000),
                0x4_0000,
                0,
                0,
                1024,
                Permissions::ReadWriteOnly,
                &mut config
            )
            .is_none());
    }

    #[test]
    fn out_of_pool_allocation_rejected() {
        let mpu = LegacyCortexM::with_fresh_hardware(BugVariant::Fixed);
        let mut config = CortexMConfig::default();
        assert!(mpu
            .allocate_app_mem_region(
                PtrU8::new(0x2000_0000),
                2048, // Pool smaller than the needed block.
                0,
                4096,
                1024,
                Permissions::ReadWriteOnly,
                &mut config
            )
            .is_none());
    }
}
