//! The legacy process loader's layout recomputation — the *disagreement*
//! problem made concrete (§3.2).
//!
//! `allocate_app_mem_region` computes the process/kernel memory split
//! internally but returns only `(start, size)`. Tock's process loader then
//! "must redo the work of carving the remaining pool of RAM into
//! process-accessible memory and kernel grant memory", and the two
//! computations can disagree: the hardware enforces subregion boundaries,
//! the loader believes `start + app_size`.

use crate::cortexm::AllocLayout;
use tt_hw::cycles::{charge_n, Cost};

/// The breaks the process loader believes, recomputed from `(start, size)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecomputedBreaks {
    /// Start of the process memory block.
    pub memory_start: usize,
    /// Total block size.
    pub memory_size: usize,
    /// End of process-accessible RAM, as the loader computes it.
    pub app_break: usize,
    /// Start of the kernel grant region, as the loader computes it.
    pub kernel_break: usize,
}

/// The loader-side recomputation (Tock `process_standard::create`): given
/// only the returned start and size, re-derive the split. This duplicated
/// work is what Fig. 11's `allocate_grant`/`create` numbers pay for in the
/// legacy kernel.
pub fn recompute_breaks(
    start: usize,
    size: usize,
    app_size: usize,
    kernel_size: usize,
) -> RecomputedBreaks {
    charge_n(Cost::Alu, 4);
    charge_n(Cost::Load, 2);
    RecomputedBreaks {
        memory_start: start,
        memory_size: size,
        app_break: start + app_size,
        kernel_break: (start + size).saturating_sub(kernel_size),
    }
}

/// A detected divergence between the loader's view and the MPU-enforced
/// layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Disagreement {
    /// End of accessible memory according to the hardware (subregions).
    pub hw_accessible_end: usize,
    /// End of accessible memory according to the loader.
    pub loader_app_break: usize,
}

/// Compares the loader's recomputed view with the hardware layout. Returns
/// `Some` when the MPU admits accesses the loader does not know about.
pub fn check_disagreement(
    layout: &AllocLayout,
    recomputed: &RecomputedBreaks,
) -> Option<Disagreement> {
    if layout.subregs_enabled_end > recomputed.app_break {
        Some(Disagreement {
            hw_accessible_end: layout.subregs_enabled_end,
            loader_app_break: recomputed.app_break,
        })
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cortexm::LegacyCortexM;
    use crate::mpu_trait::BugVariant;

    #[test]
    fn recompute_carves_top_for_kernel() {
        let b = recompute_breaks(0x2000_0000, 8192, 4096, 1024);
        assert_eq!(b.app_break, 0x2000_1000);
        assert_eq!(b.kernel_break, 0x2000_0000 + 8192 - 1024);
        assert_eq!(b.memory_size, 8192);
    }

    #[test]
    fn disagreement_always_exists_with_subregion_rounding() {
        // Even in the FIXED variant, the loader's `start + app_size` differs
        // from the hardware's subregion-rounded end whenever app_size is not
        // a multiple of the subregion size — the paper's point that the
        // monolithic interface structurally invites divergence.
        let mpu = LegacyCortexM::with_fresh_hardware(BugVariant::Fixed);
        let (start, min, app, kernel) = (0x2000_0000, 0, 3000, 1000);
        let layout = mpu.compute_alloc_layout(start, min, app, kernel);
        let rec = recompute_breaks(layout.region_start, layout.mem_size_po2, app, kernel);
        let d = check_disagreement(&layout, &rec);
        assert!(d.is_some(), "layout {layout:?} vs {rec:?}");
        let d = d.unwrap();
        assert!(d.hw_accessible_end > d.loader_app_break);
    }

    #[test]
    fn no_disagreement_when_app_size_is_subregion_aligned() {
        let mpu = LegacyCortexM::with_fresh_hardware(BugVariant::Fixed);
        // app = 2048 with region_size = 2048 → subregions of 256; but the
        // +1 in `num_enabled_subregs` still rounds one subregion past the
        // requested size, so pick app so that layout end == app break:
        // impossible with the +1 — assert the structural property instead:
        // hardware end is always strictly beyond the ideal app break.
        let layout = mpu.compute_alloc_layout(0x2000_0000, 0, 2048, 1024);
        let rec = recompute_breaks(layout.region_start, layout.mem_size_po2, 2048, 1024);
        assert!(layout.subregs_enabled_end > rec.memory_start);
        assert!(check_disagreement(&layout, &rec).is_some());
    }

    #[test]
    fn saturating_kernel_break_on_degenerate_sizes() {
        // kernel_size larger than the whole block: the subtraction saturates
        // instead of wrapping.
        let b = recompute_breaks(0x1000, 64, 32, 0x2000);
        assert_eq!(b.kernel_break, 0);
        let b2 = recompute_breaks(0x1000, 64, 32, 1024);
        assert_eq!(b2.kernel_break, 0x1000 + 64 - 1024);
    }
}
