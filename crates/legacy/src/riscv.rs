//! The legacy monolithic PMP driver, with the historical comparison bugs.
//!
//! The RISC-V side of Tock had its own isolation bugs in this era:
//! tock#2173 ("pmp: disallow access above app brk") and tock#2947
//! ("Fixup PMP comparison"). Both stem from the same monolithic pattern:
//! the driver derives the protected range from process-layout arithmetic
//! inline, and a wrong bound or comparison silently exposes grant memory.
//!
//! The `Buggy` variant programs the user TOR region up to the **kernel
//! break** instead of the app break (the #2173 class); `Fixed` programs it
//! to the app break.

use crate::mpu_trait::{BugVariant, LegacyMpu, LegacyMpuError};
use std::cell::RefCell;
use std::rc::Rc;
use tt_hw::cycles::{charge, charge_n, Cost};
use tt_hw::riscv::pmp::{AddressMode, PMP_R, PMP_W, PMP_X};
use tt_hw::riscv::RiscvPmp;
use tt_hw::{Permissions, PtrU8};

/// PMP entry pair used for process RAM (TOR: entries 0 and 1).
pub const RAM_ENTRY_BASE: usize = 0;
/// PMP entry pair used for process flash (TOR: entries 2 and 3).
pub const FLASH_ENTRY_BASE: usize = 2;

/// Encodes logical permissions into pmpcfg R/W/X bits.
pub fn encode_permissions(perms: Permissions) -> u8 {
    match perms {
        Permissions::ReadWriteExecute => PMP_R | PMP_W | PMP_X,
        Permissions::ReadWriteOnly => PMP_R | PMP_W,
        Permissions::ReadExecuteOnly => PMP_R | PMP_X,
        Permissions::ReadOnly => PMP_R,
        Permissions::ExecuteOnly => PMP_X,
    }
}

/// The legacy per-process PMP configuration: raw (cfg, addr) pairs.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PmpConfig {
    /// Entries staged for the hardware (cfg byte, pmpaddr value).
    pub entries: [(u8, u32); 8],
    /// Cached block geometry (start, total size) — the legacy code keeps
    /// just enough to re-derive everything else.
    pub block: Option<(usize, usize)>,
    /// Cached kernel size for re-derivation.
    pub kernel_size: usize,
}

/// The legacy RISC-V PMP driver.
#[derive(Debug, Clone)]
pub struct LegacyRiscv {
    variant: BugVariant,
    hardware: Rc<RefCell<RiscvPmp>>,
}

impl LegacyRiscv {
    /// Creates a driver over the given PMP instance.
    pub fn new(variant: BugVariant, hardware: Rc<RefCell<RiscvPmp>>) -> Self {
        Self { variant, hardware }
    }

    /// Creates a driver with fresh hardware for the given chip.
    pub fn with_fresh_hardware(variant: BugVariant, chip: tt_hw::riscv::PmpChip) -> Self {
        Self::new(variant, Rc::new(RefCell::new(RiscvPmp::new(chip))))
    }

    /// Returns the hardware handle.
    pub fn hardware(&self) -> Rc<RefCell<RiscvPmp>> {
        Rc::clone(&self.hardware)
    }

    fn stage_tor(
        config: &mut PmpConfig,
        base_entry: usize,
        lo: usize,
        hi: usize,
        perms: Permissions,
    ) {
        charge_n(Cost::Alu, 4);
        charge_n(Cost::Store, 2);
        config.entries[base_entry] = (0, (lo >> 2) as u32);
        config.entries[base_entry + 1] = (
            encode_permissions(perms) | (AddressMode::Tor.encode() << 3),
            (hi >> 2) as u32,
        );
    }
}

impl LegacyMpu for LegacyRiscv {
    type MpuConfig = PmpConfig;

    fn allocate_app_mem_region(
        &self,
        unalloc_start: PtrU8,
        unalloc_size: usize,
        min_size: usize,
        app_size: usize,
        kernel_size: usize,
        permissions: Permissions,
        config: &mut PmpConfig,
    ) -> Option<(PtrU8, usize)> {
        if app_size == 0 || kernel_size == 0 {
            return None;
        }
        // PMP TOR has 4-byte granularity, so no power-of-two contortions:
        // round sizes to the granularity and carve the block directly.
        charge_n(Cost::Alu, 6);
        let g = self.hardware.borrow().chip().granularity();
        let start = tt_contracts::math::align_up(unalloc_start.as_usize(), g);
        let app =
            tt_contracts::math::align_up(app_size.max(min_size.saturating_sub(kernel_size)), g);
        let kernel = tt_contracts::math::align_up(kernel_size, g);
        let total = tt_contracts::checked_add("legacy-pmp::alloc", app, kernel);
        charge(Cost::Branch);
        if start + total > unalloc_start.as_usize() + unalloc_size {
            return None;
        }

        let app_break = start + app;
        let kernel_break = start + total - kernel; // == app_break here.
                                                   // The historical comparison bug class: program the user-accessible
                                                   // TOR bound with the WRONG break.
        let bound = match self.variant {
            BugVariant::Buggy => start + total, // #2173: everything incl. grant.
            BugVariant::Fixed => app_break,
        };
        debug_assert!(kernel_break <= start + total);
        Self::stage_tor(config, RAM_ENTRY_BASE, start, bound, permissions);
        config.block = Some((start, total));
        config.kernel_size = kernel;
        Some((PtrU8::new(start), total))
    }

    fn update_app_mem_region(
        &self,
        new_app_break: PtrU8,
        kernel_break: PtrU8,
        permissions: Permissions,
        config: &mut PmpConfig,
    ) -> Result<(), LegacyMpuError> {
        let (start, total) = config.block.ok_or(LegacyMpuError::InvalidParameters)?;
        charge_n(Cost::Branch, 2);
        let brk = new_app_break.as_usize();
        match self.variant {
            BugVariant::Fixed => {
                if brk <= start || brk > kernel_break.as_usize() || brk > start + total {
                    return Err(LegacyMpuError::InvalidParameters);
                }
                Self::stage_tor(config, RAM_ENTRY_BASE, start, brk, permissions);
            }
            BugVariant::Buggy => {
                // #2173 class: compare against the block end, not the
                // kernel break, and program the bound past the grant.
                if brk <= start || brk > start + total {
                    return Err(LegacyMpuError::InvalidParameters);
                }
                let bound = brk.max(kernel_break.as_usize());
                Self::stage_tor(config, RAM_ENTRY_BASE, start, bound, permissions);
            }
        }
        Ok(())
    }

    fn allocate_flash_region(
        &self,
        flash_start: PtrU8,
        flash_size: usize,
        permissions: Permissions,
        config: &mut PmpConfig,
    ) -> Option<()> {
        charge_n(Cost::Alu, 2);
        let g = self.hardware.borrow().chip().granularity();
        if !flash_start.as_usize().is_multiple_of(g) || flash_size == 0 {
            return None;
        }
        Self::stage_tor(
            config,
            FLASH_ENTRY_BASE,
            flash_start.as_usize(),
            flash_start.as_usize() + flash_size,
            permissions,
        );
        Some(())
    }

    // TRUSTED: CSR write-out (TCB, §6.1).
    fn configure_mpu(&self, config: &PmpConfig) {
        let mut hw = self.hardware.borrow_mut();
        for (i, (cfg, addr)) in config.entries.iter().enumerate() {
            hw.write_addr(i, *addr);
            hw.write_cfg(i, *cfg);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tt_hw::mem::{AccessType, Privilege, ProtectionUnit};
    use tt_hw::riscv::PmpChip;

    const RAM: usize = 0x8000_0000;

    fn alloc(variant: BugVariant) -> (LegacyRiscv, PmpConfig, PtrU8, usize) {
        let mpu = LegacyRiscv::with_fresh_hardware(variant, PmpChip::SifiveE310);
        let mut config = PmpConfig::default();
        let (start, total) = mpu
            .allocate_app_mem_region(
                PtrU8::new(RAM),
                0x4000,
                0,
                2048,
                512,
                Permissions::ReadWriteOnly,
                &mut config,
            )
            .unwrap();
        mpu.configure_mpu(&config);
        (mpu, config, start, total)
    }

    #[test]
    fn buggy_pmp_exposes_grant_region() {
        let (mpu, _config, start, total) = alloc(BugVariant::Buggy);
        let hw = mpu.hardware();
        let hw = hw.borrow();
        // Grant bytes live in the top `kernel` part of the block; with the
        // buggy bound, user writes there are admitted.
        let grant_byte = start.as_usize() + total - 256;
        assert!(hw
            .check(grant_byte, 4, AccessType::Write, Privilege::Unprivileged)
            .allowed());
    }

    #[test]
    fn fixed_pmp_protects_grant_region() {
        let (mpu, _config, start, total) = alloc(BugVariant::Fixed);
        let hw = mpu.hardware();
        let hw = hw.borrow();
        let grant_byte = start.as_usize() + total - 256;
        assert!(!hw
            .check(grant_byte, 4, AccessType::Write, Privilege::Unprivileged)
            .allowed());
        // App memory still accessible.
        assert!(hw
            .check(
                start.as_usize(),
                4,
                AccessType::Write,
                Privilege::Unprivileged
            )
            .allowed());
        assert!(hw
            .check(
                start.as_usize() + 2044,
                4,
                AccessType::Read,
                Privilege::Unprivileged
            )
            .allowed());
    }

    #[test]
    fn fixed_update_respects_kernel_break() {
        let (mpu, mut config, start, total) = alloc(BugVariant::Fixed);
        let kernel_break = PtrU8::new(start.as_usize() + total - 512);
        // Growing to the kernel break exactly is allowed…
        mpu.update_app_mem_region(
            kernel_break,
            kernel_break,
            Permissions::ReadWriteOnly,
            &mut config,
        )
        .unwrap();
        // …but past it is rejected.
        let err = mpu.update_app_mem_region(
            kernel_break.offset(4),
            kernel_break,
            Permissions::ReadWriteOnly,
            &mut config,
        );
        assert_eq!(err, Err(LegacyMpuError::InvalidParameters));
    }

    #[test]
    fn buggy_update_allows_growth_past_kernel_break() {
        let (mpu, mut config, start, total) = alloc(BugVariant::Buggy);
        let kernel_break = PtrU8::new(start.as_usize() + total - 512);
        // The buggy comparison admits a break above the kernel break.
        mpu.update_app_mem_region(
            kernel_break.offset(4),
            kernel_break,
            Permissions::ReadWriteOnly,
            &mut config,
        )
        .unwrap();
        mpu.configure_mpu(&config);
        let hw = mpu.hardware();
        let hw = hw.borrow();
        assert!(hw
            .check(
                kernel_break.as_usize(),
                4,
                AccessType::Write,
                Privilege::Unprivileged
            )
            .allowed());
    }

    #[test]
    fn flash_region_grants_read_execute() {
        let mpu = LegacyRiscv::with_fresh_hardware(BugVariant::Fixed, PmpChip::Esp32C3);
        let mut config = PmpConfig::default();
        mpu.allocate_flash_region(
            PtrU8::new(0x4200_0000),
            0x1000,
            Permissions::ReadExecuteOnly,
            &mut config,
        )
        .unwrap();
        mpu.configure_mpu(&config);
        let hw = mpu.hardware();
        let hw = hw.borrow();
        assert!(hw
            .check(0x4200_0000, 4, AccessType::Execute, Privilege::Unprivileged)
            .allowed());
        assert!(!hw
            .check(0x4200_0000, 4, AccessType::Write, Privilege::Unprivileged)
            .allowed());
        assert!(!hw
            .check(0x4200_1000, 4, AccessType::Read, Privilege::Unprivileged)
            .allowed());
    }

    #[test]
    fn allocation_respects_pool_bounds() {
        let mpu = LegacyRiscv::with_fresh_hardware(BugVariant::Fixed, PmpChip::SifiveE310);
        let mut config = PmpConfig::default();
        assert!(mpu
            .allocate_app_mem_region(
                PtrU8::new(RAM),
                1024,
                0,
                2048,
                512,
                Permissions::ReadWriteOnly,
                &mut config
            )
            .is_none());
    }

    #[test]
    fn ibex_granularity_rounds_sizes() {
        let mpu = LegacyRiscv::with_fresh_hardware(BugVariant::Fixed, PmpChip::IbexEarlGrey);
        let mut config = PmpConfig::default();
        let (start, total) = mpu
            .allocate_app_mem_region(
                PtrU8::new(0x1000_0002), // Misaligned for G = 8.
                0x4000,
                0,
                1001,
                99,
                Permissions::ReadWriteOnly,
                &mut config,
            )
            .unwrap();
        assert_eq!(start.as_usize() % 8, 0);
        assert_eq!(total % 8, 0);
        assert!(total >= 1001 + 99);
    }

    #[test]
    fn permission_encoding_matches_pmp_bits() {
        assert_eq!(
            encode_permissions(Permissions::ReadWriteOnly),
            PMP_R | PMP_W
        );
        assert_eq!(
            encode_permissions(Permissions::ReadExecuteOnly),
            PMP_R | PMP_X
        );
        assert_eq!(encode_permissions(Permissions::ExecuteOnly), PMP_X);
    }
}
