//! Tock's original **monolithic** MPU abstraction — the paper's baseline.
//!
//! TickTock is a fork: to show what the fork fixes, this crate carries a
//! faithful reimplementation of the pre-fork design (paper §3.2, Fig. 3a
//! and Fig. 4a), including the historical isolation bugs as selectable
//! [`mpu_trait::BugVariant`]s:
//!
//! * [`cortexm`] — the Fig. 4a Cortex-M allocator (BUG1: subregion/grant
//!   overlap, tock#4366; BUG3: brk underflow, §2.2);
//! * [`riscv`] — the monolithic PMP driver (the tock#2173/#2947 comparison
//!   bug class);
//! * [`process`] — the loader-side layout recomputation (the
//!   *disagreement* problem);
//! * [`obligations`] — the Figure 12 "TickTock (Monolithic)" verification
//!   workload.

pub mod cortexm;
pub mod mpu_trait;
pub mod obligations;
pub mod process;
pub mod riscv;

pub use cortexm::{AllocLayout, CortexMConfig, LegacyCortexM};
pub use mpu_trait::{BugVariant, LegacyMpu, LegacyMpuError};
pub use riscv::{LegacyRiscv, PmpConfig};
