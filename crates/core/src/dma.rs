//! `DmaCell`: the safe DMA interface (paper Fig. 9, §4.6).
//!
//! DMA configuration registers take plain `usize` base pointers, so a
//! driver could point the engine at *any* memory, bypassing both Rust's
//! ownership and the MPU. TickTock's answer: a [`DmaCell`] takes ownership
//! of a buffer while DMA may be running and hands back a [`DmaWrapper`] —
//! the only value accepted by the DMA engine — whose address is valid by
//! construction.
//!
//! The module also keeps the *unsound* [`LegacyTakeCell`] pattern the
//! paper found misused in Tock: it lets the driver take the buffer back
//! while DMA is still writing, creating a mutable-aliasing window that the
//! simulator makes observable as a lost update.

use std::cell::{Cell, RefCell};
use tt_contracts::requires;
use tt_hw::mem::PhysicalMemory;
use tt_hw::AddrRange;

/// A uniquely owned span of simulated RAM used as a DMA buffer.
///
/// Deliberately neither `Clone` nor `Copy`: holding a `DmaBuffer` *is* the
/// ownership of those bytes, mirroring the `&'a mut T` of Fig. 9.
#[derive(Debug, PartialEq, Eq)]
pub struct DmaBuffer {
    range: AddrRange,
}

impl DmaBuffer {
    /// Claims `[addr, addr + len)` as a DMA buffer.
    pub fn new(addr: usize, len: usize) -> Self {
        Self {
            range: AddrRange::new(addr, addr + len),
        }
    }

    /// The buffer's address range.
    pub fn range(&self) -> AddrRange {
        self.range
    }
}

/// The opaque, validated DMA handle (Fig. 9's `DmaWrapper`).
///
/// Only [`DmaCell::place`] can create one, so any `DmaWrapper` the engine
/// receives corresponds to a buffer the cell owns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DmaWrapper {
    base: usize,
    len: usize,
}

impl DmaWrapper {
    /// The base pointer written to the DMA engine's address register.
    pub fn base(&self) -> usize {
        self.base
    }

    /// The buffer length written to the length register.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the wrapped buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// The safe DMA cell (Fig. 9's `DmaCell`).
#[derive(Debug, Default)]
pub struct DmaCell {
    val: RefCell<Option<DmaBuffer>>,
    in_progress: Cell<bool>,
}

impl DmaCell {
    /// Creates an empty cell.
    pub fn new() -> Self {
        Self::default()
    }

    /// Places a buffer into the cell, transferring ownership for the
    /// duration of the DMA operation. Returns `None` (cannot replace) if a
    /// DMA operation is already in progress, exactly as in Fig. 9.
    pub fn place(&self, buf: DmaBuffer) -> Option<DmaWrapper> {
        if self.val.borrow().is_some() {
            return None; // Cannot replace, DMA in progress.
        }
        let wrapper = DmaWrapper {
            base: buf.range.start,
            len: buf.range.len(),
        };
        *self.val.borrow_mut() = Some(buf);
        self.in_progress.set(true);
        Some(wrapper)
    }

    /// Marks the hardware operation finished (called from the DMA-complete
    /// interrupt path).
    pub fn operation_finished(&self) {
        self.in_progress.set(false);
    }

    /// Retrieves the buffer after the DMA operation finishes.
    ///
    /// The paper marks this `unsafe` ("we must ensure DMA operation is
    /// completed before calling"); here the same proof obligation is a
    /// checked contract, so calling it with DMA still running is a
    /// verification failure rather than silent aliasing.
    pub fn completed(&self) -> Option<DmaBuffer> {
        requires!("DmaCell::completed", !self.in_progress.get());
        self.val.borrow_mut().take()
    }

    /// Whether an operation is currently outstanding.
    pub fn busy(&self) -> bool {
        self.in_progress.get()
    }
}

/// The unsound legacy pattern: a take-anytime cell.
///
/// Tock's `TakeCell` was *intended* to represent DMA ownership, but "we
/// discovered an instance in which TakeCells can be misused to break Rust's
/// single ownership, by letting the driver read or write the buffer while
/// DMA may be writing to it too" (§4.6).
#[derive(Debug, Default)]
pub struct LegacyTakeCell {
    val: RefCell<Option<DmaBuffer>>,
}

impl LegacyTakeCell {
    /// Creates an empty cell.
    pub fn new() -> Self {
        Self::default()
    }

    /// Puts a buffer in.
    pub fn put(&self, buf: DmaBuffer) {
        *self.val.borrow_mut() = Some(buf);
    }

    /// Takes the buffer out — **even while DMA is running**. This is the
    /// misuse window.
    pub fn take(&self) -> Option<DmaBuffer> {
        self.val.borrow_mut().take()
    }
}

/// A simulated one-channel DMA engine.
///
/// `start` accepts only a [`DmaWrapper`]; `start_raw` models the MMIO
/// reality the wrapper protects against (any `usize` goes) and exists so
/// tests can demonstrate the unprotected failure mode.
#[derive(Debug, Default)]
pub struct SimDmaEngine {
    active: Option<(DmaWrapper, Vec<u8>)>,
}

impl SimDmaEngine {
    /// Creates an idle engine.
    pub fn new() -> Self {
        Self::default()
    }

    /// Starts a transfer of `data` into the wrapped buffer.
    pub fn start(&mut self, wrapper: DmaWrapper, data: Vec<u8>) -> Result<(), DmaError> {
        if self.active.is_some() {
            return Err(DmaError::Busy);
        }
        if data.len() > wrapper.len() {
            return Err(DmaError::Overrun);
        }
        self.active = Some((wrapper, data));
        Ok(())
    }

    /// Models writing a raw base pointer into the engine's MMIO register:
    /// no validation at all. Kept for the negative tests; real drivers go
    /// through [`SimDmaEngine::start`].
    pub fn start_raw(&mut self, base: usize, data: Vec<u8>) -> Result<(), DmaError> {
        if self.active.is_some() {
            return Err(DmaError::Busy);
        }
        self.active = Some((
            DmaWrapper {
                base,
                len: data.len(),
            },
            data,
        ));
        Ok(())
    }

    /// Whether a transfer is outstanding.
    pub fn busy(&self) -> bool {
        self.active.is_some()
    }

    /// Completes the outstanding transfer, writing into physical memory.
    pub fn complete(&mut self, mem: &mut PhysicalMemory) -> Result<usize, DmaError> {
        let (wrapper, data) = self.active.take().ok_or(DmaError::Idle)?;
        mem.write_bytes(wrapper.base(), &data)
            .map_err(|_| DmaError::Fault)?;
        Ok(data.len())
    }
}

/// DMA engine errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DmaError {
    /// A transfer is already outstanding.
    Busy,
    /// No transfer is outstanding.
    Idle,
    /// The data does not fit the wrapped buffer.
    Overrun,
    /// The transfer touched unmapped or read-only memory.
    Fault,
}

#[cfg(test)]
mod tests {
    use super::*;
    use tt_contracts::{take_violations, with_mode, Mode};
    use tt_hw::mem::MemoryMap;

    fn mem() -> PhysicalMemory {
        PhysicalMemory::new(MemoryMap {
            flash: AddrRange::new(0, 0x1000),
            ram: AddrRange::new(0x2000_0000, 0x2001_0000),
        })
    }

    #[test]
    fn place_transfer_complete_roundtrip() {
        let mut mem = mem();
        let cell = DmaCell::new();
        let mut engine = SimDmaEngine::new();
        let wrapper = cell.place(DmaBuffer::new(0x2000_0100, 64)).unwrap();
        engine.start(wrapper, vec![7u8; 64]).unwrap();
        assert!(cell.busy());
        assert_eq!(engine.complete(&mut mem).unwrap(), 64);
        cell.operation_finished();
        let buf = cell.completed().unwrap();
        assert_eq!(buf.range(), AddrRange::new(0x2000_0100, 0x2000_0140));
        assert_eq!(mem.read_u8(0x2000_0100).unwrap(), 7);
        assert_eq!(mem.read_u8(0x2000_013F).unwrap(), 7);
        assert_eq!(mem.read_u8(0x2000_0140).unwrap(), 0);
    }

    #[test]
    fn cannot_place_while_occupied() {
        let cell = DmaCell::new();
        cell.place(DmaBuffer::new(0x2000_0000, 32)).unwrap();
        assert!(cell.place(DmaBuffer::new(0x2000_1000, 32)).is_none());
    }

    #[test]
    fn completed_before_finish_is_a_contract_violation() {
        with_mode(Mode::Observe, || {
            let cell = DmaCell::new();
            cell.place(DmaBuffer::new(0x2000_0000, 32)).unwrap();
            let _ = cell.completed(); // DMA still in progress!
        });
        assert!(take_violations()
            .iter()
            .any(|v| v.site == "DmaCell::completed"));
    }

    #[test]
    fn engine_rejects_overrun_and_double_start() {
        let cell = DmaCell::new();
        let mut engine = SimDmaEngine::new();
        let w = cell.place(DmaBuffer::new(0x2000_0000, 16)).unwrap();
        assert_eq!(engine.start(w, vec![0; 32]), Err(DmaError::Overrun));
        engine.start(w, vec![0; 16]).unwrap();
        assert_eq!(engine.start(w, vec![0; 8]), Err(DmaError::Busy));
    }

    #[test]
    fn raw_register_path_can_clobber_anything() {
        // What the DmaWrapper prevents: a plain usize write targeting
        // memory the driver never owned.
        let mut mem = mem();
        mem.write_u32(0x2000_8000, 0xAAAA_AAAA).unwrap(); // "Kernel data".
        let mut engine = SimDmaEngine::new();
        engine.start_raw(0x2000_8000, vec![0xFF; 4]).unwrap();
        engine.complete(&mut mem).unwrap();
        assert_eq!(mem.read_u32(0x2000_8000).unwrap(), 0xFFFF_FFFF);
    }

    #[test]
    fn takecell_misuse_aliases_the_buffer() {
        // The §4.6 unsoundness: the driver takes the buffer back while the
        // engine still holds the address, and both write. The driver's
        // write is lost when the DMA completes — a data race made visible.
        let mut mem = mem();
        let cell = LegacyTakeCell::new();
        let mut engine = SimDmaEngine::new();
        cell.put(DmaBuffer::new(0x2000_0200, 16));
        // Driver leaks the address into the engine…
        engine.start_raw(0x2000_0200, vec![1; 16]).unwrap();
        // …then takes the buffer back mid-flight and writes through it.
        let buf = cell.take().expect("TakeCell lets this happen");
        mem.write_bytes(buf.range().start, &[9; 16]).unwrap();
        // DMA completes afterwards: the driver's bytes are clobbered.
        engine.complete(&mut mem).unwrap();
        assert_eq!(mem.read_u8(0x2000_0200).unwrap(), 1, "driver write lost");
    }

    #[test]
    fn dma_cell_prevents_the_aliasing_window() {
        // With DmaCell, the buffer cannot be retrieved until the operation
        // is finished, so the driver's write happens strictly after DMA.
        let mut mem = mem();
        let cell = DmaCell::new();
        let mut engine = SimDmaEngine::new();
        let w = cell.place(DmaBuffer::new(0x2000_0200, 16)).unwrap();
        engine.start(w, vec![1; 16]).unwrap();
        engine.complete(&mut mem).unwrap();
        cell.operation_finished();
        let buf = cell.completed().unwrap();
        mem.write_bytes(buf.range().start, &[9; 16]).unwrap();
        assert_eq!(mem.read_u8(0x2000_0200).unwrap(), 9, "driver write wins");
    }

    #[test]
    fn wrapper_reports_geometry() {
        let cell = DmaCell::new();
        let w = cell.place(DmaBuffer::new(0x2000_0000, 128)).unwrap();
        assert_eq!(w.base(), 0x2000_0000);
        assert_eq!(w.len(), 128);
        assert!(!w.is_empty());
    }
}
