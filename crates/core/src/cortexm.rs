//! The Cortex-M granular MPU driver (paper §4.4).
//!
//! `CortexMRegion` implements [`RegionDescriptor`] directly over the
//! RBAR/RASR register encodings: `start`, `size` and `is_set` are decoded
//! from the same bits the hardware consumes, so "the bits of the rbar and
//! rasr registers are flipped to precisely match the logical values that
//! the kernel tracks". Subregion masks are built with verified bitwise
//! arithmetic instead of loops — one of the Fig. 11 speedups.

use crate::mpu::Mpu;
use crate::region::{OptPair, Pair, RegionDescriptor};
use std::cell::RefCell;
use std::rc::Rc;
use tt_contracts::math::{align_up, closest_power_of_two_usize, is_pow2};
use tt_contracts::{ensures, requires};
use tt_hw::cortexm::mpu::{size_to_rasr_field, RegionAttributes};
use tt_hw::cortexm::CortexMpu;
use tt_hw::cycles::{charge, charge_n, Cost};
use tt_hw::registers::FieldValue;
use tt_hw::{Permissions, PtrU8};

/// Minimum region size that supports subregions.
const MIN_SUBREGION_REGION: usize = 256;

/// Encodes logical permissions into the (AP, XN) fields for user access.
pub fn encode_permissions(perms: Permissions) -> (u32, u32) {
    match perms {
        Permissions::ReadWriteExecute => (0b011, 0),
        Permissions::ReadWriteOnly => (0b011, 1),
        Permissions::ReadExecuteOnly => (0b110, 0),
        Permissions::ReadOnly => (0b110, 1),
        Permissions::ExecuteOnly => (0b110, 0),
    }
}

/// A single Cortex-M region: a register pair plus its slot number
/// (the paper's `CortexMRegion { rbar, rasr }`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CortexMRegion {
    region_id: usize,
    rbar: FieldValue<tt_hw::cortexm::mpu::RegionBaseAddress::Register>,
    rasr: FieldValue<tt_hw::cortexm::mpu::RegionAttributes::Register>,
}

impl CortexMRegion {
    /// Builds a region of power-of-two `region_size` at `base` (aligned),
    /// with the first `enabled_subregions` of its eight subregions enabled.
    ///
    /// The SRD mask is pure bitwise arithmetic: `0xFF << k` truncated —
    /// no loop (contrast `tt_legacy::LegacyCortexM::srd_masks_loop`).
    pub fn new(
        region_id: usize,
        base: usize,
        region_size: usize,
        enabled_subregions: usize,
        perms: Permissions,
    ) -> Self {
        requires!(
            "CortexMRegion::new",
            is_pow2(region_size) && region_size >= MIN_SUBREGION_REGION
        );
        requires!("CortexMRegion::new", base.is_multiple_of(region_size));
        requires!("CortexMRegion::new", (1..=8).contains(&enabled_subregions));
        let (ap, xn) = encode_permissions(perms);
        charge_n(Cost::Alu, 6);
        // Bitwise SRD: disable everything at or above `enabled_subregions`.
        let srd = (0xFFu32 << enabled_subregions) & 0xFF;
        let rbar = tt_hw::cortexm::mpu::RegionBaseAddress::ADDR.val((base as u32) >> 5);
        let rasr = RegionAttributes::ENABLE.val(1)
            + RegionAttributes::SIZE.val(size_to_rasr_field(region_size))
            + RegionAttributes::SRD.val(srd)
            + RegionAttributes::AP.val(ap)
            + RegionAttributes::XN.val(xn);
        let region = Self {
            region_id,
            rbar,
            rasr,
        };
        ensures!(
            "CortexMRegion::new",
            region.size() == Some(enabled_subregions * (region_size / 8))
        );
        ensures!(
            "CortexMRegion::new",
            region.start() == Some(PtrU8::new(base))
        );
        region
    }

    /// Builds a region covering exactly `[start, start + size)` with no
    /// subregion games (used for flash).
    pub fn exact(region_id: usize, start: usize, size: usize, perms: Permissions) -> Option<Self> {
        charge_n(Cost::Alu, 3);
        if !is_pow2(size) || size < 32 || !start.is_multiple_of(size) {
            return None;
        }
        let (ap, xn) = encode_permissions(perms);
        charge_n(Cost::Alu, 4);
        Some(Self {
            region_id,
            rbar: tt_hw::cortexm::mpu::RegionBaseAddress::ADDR.val((start as u32) >> 5),
            rasr: RegionAttributes::ENABLE.val(1)
                + RegionAttributes::SIZE.val(size_to_rasr_field(size))
                + RegionAttributes::AP.val(ap)
                + RegionAttributes::XN.val(xn),
        })
    }

    /// Raw RBAR value (without VALID/REGION selection fields).
    pub fn rbar_value(&self) -> u32 {
        self.rbar.value()
    }

    /// Raw RASR value.
    pub fn rasr_value(&self) -> u32 {
        self.rasr.value()
    }

    fn rasr_raw(&self) -> u32 {
        self.rasr.value()
    }

    fn region_size(&self) -> usize {
        1usize << (RegionAttributes::SIZE.read(self.rasr_raw()) + 1)
    }

    fn base(&self) -> usize {
        (self.rbar.value() & 0xFFFF_FFE0) as usize
    }

    fn srd(&self) -> u32 {
        RegionAttributes::SRD.read(self.rasr_raw())
    }

    /// Decodes the enabled-subregion prefix length from the SRD byte.
    ///
    /// All regions this driver builds enable a prefix `[0, k)`; decoding
    /// verifies that shape (an arbitrary SRD with holes has no contiguous
    /// accessible range and would be a driver bug).
    fn enabled_prefix(&self) -> usize {
        let enabled = (!self.srd()) & 0xFF;
        let k = enabled.trailing_ones() as usize;
        debug_assert_eq!(enabled, (0xFFu32 >> (8 - k)) & 0xFF, "non-prefix SRD");
        k
    }
}

impl RegionDescriptor for CortexMRegion {
    fn unset(region_id: usize) -> Self {
        Self {
            region_id,
            rbar: FieldValue::empty(),
            rasr: FieldValue::empty(),
        }
    }

    fn start(&self) -> Option<PtrU8> {
        if !self.is_set() {
            return None;
        }
        charge_n(Cost::Alu, 2);
        Some(PtrU8::new(self.base()))
    }

    fn size(&self) -> Option<usize> {
        if !self.is_set() {
            return None;
        }
        charge_n(Cost::Alu, 3);
        let region_size = self.region_size();
        if region_size >= MIN_SUBREGION_REGION {
            Some(self.enabled_prefix() * (region_size / 8))
        } else {
            Some(region_size)
        }
    }

    fn is_set(&self) -> bool {
        RegionAttributes::ENABLE.read(self.rasr_raw()) != 0
    }

    fn matches_permissions(&self, perms: Permissions) -> bool {
        if !self.is_set() {
            return false;
        }
        let (ap, xn) = encode_permissions(perms);
        RegionAttributes::AP.read(self.rasr_raw()) == ap
            && RegionAttributes::XN.read(self.rasr_raw()) == xn
    }

    fn overlaps(&self, lo: usize, hi: usize) -> bool {
        match self.accessible_range() {
            Some((s, e)) => lo < hi && s < hi && lo < e,
            None => false,
        }
    }

    fn region_id(&self) -> usize {
        self.region_id
    }
}

/// Geometry chosen by the granular driver for a RAM request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct RamGeometry {
    base: usize,
    region_size: usize,
    enabled_subregions: usize, // 1..=16 across the pair.
}

impl RamGeometry {
    fn accessible(&self) -> usize {
        self.enabled_subregions * (self.region_size / 8)
    }
}

/// Picks (region_size, subregion count) so the pair's accessible span
/// strictly exceeds `total_size` (the `+1` subregion keeps `app_break <
/// kernel_break` strict by construction).
fn choose_geometry(
    unalloc_start: usize,
    unalloc_size: usize,
    total_size: usize,
) -> Option<RamGeometry> {
    if total_size == 0 {
        return None;
    }
    charge_n(Cost::Alu, 8);
    let mut region_size = (closest_power_of_two_usize(total_size) / 2).max(MIN_SUBREGION_REGION);
    let mut base = align_up(unalloc_start, region_size);
    charge_n(Cost::Div, 1);
    let mut enabled = total_size * 8 / region_size + 1;
    if enabled > 16 {
        // total_size == 2 * region_size exactly: double once; 16 subregions
        // of the doubled size always suffice.
        charge_n(Cost::Alu, 2);
        charge_n(Cost::Div, 1);
        region_size *= 2;
        base = align_up(unalloc_start, region_size);
        enabled = total_size * 8 / region_size + 1;
    }
    let geometry = RamGeometry {
        base,
        region_size,
        enabled_subregions: enabled,
    };
    ensures!("choose_geometry", geometry.accessible() > total_size);
    ensures!("choose_geometry", geometry.enabled_subregions <= 16);
    charge_n(Cost::Alu, 2);
    if base + geometry.accessible() > unalloc_start + unalloc_size {
        return None;
    }
    Some(geometry)
}

fn geometry_to_pair(
    max_region_id: usize,
    g: RamGeometry,
    perms: Permissions,
) -> Pair<CortexMRegion> {
    requires!("geometry_to_pair", (1..8).contains(&max_region_id));
    let first_id = max_region_id - 1;
    let k0 = g.enabled_subregions.min(8);
    let k1 = g.enabled_subregions.saturating_sub(8);
    let fst = CortexMRegion::new(first_id, g.base, g.region_size, k0, perms);
    let snd = if k1 > 0 {
        CortexMRegion::new(
            max_region_id,
            g.base + g.region_size,
            g.region_size,
            k1,
            perms,
        )
    } else {
        CortexMRegion::unset(max_region_id)
    };
    Pair { fst, snd }
}

/// The granular Cortex-M MPU driver.
#[derive(Debug, Clone)]
pub struct GranularCortexM {
    hardware: Rc<RefCell<CortexMpu>>,
}

impl GranularCortexM {
    /// Creates a driver over the given hardware.
    pub fn new(hardware: Rc<RefCell<CortexMpu>>) -> Self {
        Self { hardware }
    }

    /// Creates a driver with fresh hardware (testing convenience).
    pub fn with_fresh_hardware() -> Self {
        Self::new(Rc::new(RefCell::new(CortexMpu::new())))
    }

    /// Returns the hardware handle.
    pub fn hardware(&self) -> Rc<RefCell<CortexMpu>> {
        Rc::clone(&self.hardware)
    }
}

impl Mpu for GranularCortexM {
    type Region = CortexMRegion;

    fn new_regions(
        max_region_id: usize,
        unalloc_start: PtrU8,
        unalloc_size: usize,
        total_size: usize,
        permissions: Permissions,
    ) -> OptPair<CortexMRegion> {
        let g = choose_geometry(unalloc_start.as_usize(), unalloc_size, total_size)?;
        Some(geometry_to_pair(max_region_id, g, permissions))
    }

    fn update_regions(
        max_region_id: usize,
        region_start: PtrU8,
        available_size: usize,
        total_size: usize,
        permissions: Permissions,
    ) -> OptPair<CortexMRegion> {
        charge_n(Cost::Alu, 6);
        if total_size == 0 || total_size > available_size {
            return None;
        }
        // Re-derive a region size compatible with the existing block: the
        // largest power of two that `region_start` is aligned to, bounded
        // by half the available window (the pair spans two regions).
        let mut region_size =
            (closest_power_of_two_usize(available_size) / 2).max(MIN_SUBREGION_REGION);
        while region_size > MIN_SUBREGION_REGION
            && !region_start.as_usize().is_multiple_of(region_size)
        {
            charge(Cost::Div);
            region_size /= 2;
        }
        if !region_start.as_usize().is_multiple_of(region_size) {
            return None;
        }
        charge_n(Cost::Div, 2);
        let max_enabled = (available_size / (region_size / 8)).min(16);
        let enabled = (total_size * 8 / region_size + 1).min(max_enabled);
        if enabled == 0 || enabled * (region_size / 8) < total_size {
            return None;
        }
        let g = RamGeometry {
            base: region_start.as_usize(),
            region_size,
            enabled_subregions: enabled,
        };
        ensures!("update_regions", g.accessible() >= total_size);
        ensures!("update_regions", g.accessible() <= available_size);
        Some(geometry_to_pair(max_region_id, g, permissions))
    }

    fn create_exact_region(
        region_id: usize,
        start: PtrU8,
        size: usize,
        permissions: Permissions,
    ) -> Option<CortexMRegion> {
        CortexMRegion::exact(region_id, start.as_usize(), size, permissions)
    }

    // TRUSTED: register write-out is part of TickTock's TCB (§6.1) —
    // the write-order bug was caught by testing, not verification.
    fn configure_mpu(&self, regions: &[CortexMRegion]) {
        let mut hw = self.hardware.borrow_mut();
        // Defensive disable while reprogramming, then write each slot in
        // slot order — the ordering discipline the §6.1 differential test
        // demanded — and re-enable for unprivileged execution.
        hw.write_ctrl(false, true);
        for region in regions {
            hw.write_region(region.region_id(), region.rbar_value(), region.rasr_value());
        }
        hw.write_ctrl(true, true);
    }

    fn disable_mpu(&self) {
        self.hardware.borrow_mut().write_ctrl(false, true);
    }

    fn reenable_mpu(&self) {
        // The scheduler disables MPU_CTRL on every switch-out, so even a
        // cache hit must pay this one write to restore enforcement.
        self.hardware.borrow_mut().write_ctrl(true, true);
    }

    fn hardware_matches(&self, regions: &[CortexMRegion]) -> bool {
        let hw = self.hardware.borrow();
        regions.iter().all(|region| {
            hw.region_matches(region.region_id(), region.rbar_value(), region.rasr_value())
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tt_hw::mem::{AccessType, Privilege, ProtectionUnit};

    #[test]
    fn region_new_encodes_prefix_srd_bitwise() {
        let r = CortexMRegion::new(0, 0x2000_0000, 2048, 5, Permissions::ReadWriteOnly);
        assert!(r.is_set());
        assert_eq!(r.start().unwrap().as_usize(), 0x2000_0000);
        assert_eq!(r.size().unwrap(), 5 * 256);
        assert!(r.matches_permissions(Permissions::ReadWriteOnly));
        assert!(!r.matches_permissions(Permissions::ReadOnly));
    }

    #[test]
    fn region_roundtrip_all_subregion_counts() {
        for k in 1..=8usize {
            for exp in 8..=14u32 {
                let size = 1usize << exp;
                let r = CortexMRegion::new(
                    1,
                    0x2000_0000 & !(size - 1),
                    size,
                    k,
                    Permissions::ReadWriteOnly,
                );
                assert_eq!(r.size().unwrap(), k * (size / 8), "k={k} size={size}");
            }
        }
    }

    #[test]
    fn unset_region_exposes_nothing() {
        let r = CortexMRegion::unset(4);
        assert!(!r.is_set());
        assert_eq!(r.start(), None);
        assert_eq!(r.size(), None);
        assert!(!r.overlaps(0, usize::MAX));
        assert!(!r.matches_permissions(Permissions::ReadWriteOnly));
    }

    #[test]
    fn overlaps_uses_accessible_not_region_extent() {
        // 2048-byte region with 4 of 8 subregions: accessible is 1024.
        let r = CortexMRegion::new(0, 0x2000_0000, 2048, 4, Permissions::ReadWriteOnly);
        assert!(r.overlaps(0x2000_0000, 0x2000_0001));
        assert!(r.overlaps(0x2000_03FF, 0x2000_0500));
        assert!(!r.overlaps(0x2000_0400, 0x2000_0800)); // Disabled half.
        assert!(!r.overlaps(0x2000_0800, 0x2000_1000));
    }

    #[test]
    fn exact_region_requires_pow2_aligned() {
        assert!(
            CortexMRegion::exact(7, 0x0004_0000, 0x8000, Permissions::ReadExecuteOnly).is_some()
        );
        assert!(
            CortexMRegion::exact(7, 0x0004_0100, 0x8000, Permissions::ReadExecuteOnly).is_none()
        );
        assert!(
            CortexMRegion::exact(7, 0x0004_0000, 0x7000, Permissions::ReadExecuteOnly).is_none()
        );
        assert!(CortexMRegion::exact(7, 0x0004_0000, 16, Permissions::ReadExecuteOnly).is_none());
    }

    #[test]
    fn new_regions_accessible_strictly_exceeds_request() {
        for total in [100usize, 512, 1000, 2048, 3000, 4096, 6000, 8192] {
            let pair = GranularCortexM::new_regions(
                1,
                PtrU8::new(0x2000_0100),
                0x2_0000,
                total,
                Permissions::ReadWriteOnly,
            )
            .unwrap_or_else(|| panic!("alloc failed for {total}"));
            let (start, end) = crate::mpu::pair_span(&pair.fst, &pair.snd).unwrap();
            assert!(end - start > total, "total={total} got {}", end - start);
            // Within a subregion of the request (no gross waste).
            assert!(end - start <= total + total.next_power_of_two() / 8 + 256);
        }
    }

    #[test]
    fn new_regions_pair_is_contiguous_when_spilling() {
        let pair = GranularCortexM::new_regions(
            1,
            PtrU8::new(0x2000_0000),
            0x2_0000,
            3000,
            Permissions::ReadWriteOnly,
        )
        .unwrap();
        assert!(pair.fst.is_set());
        assert!(pair.snd.is_set(), "3000 B needs > 8 subregions of 256");
        let (_, fst_end) = pair.fst.accessible_range().unwrap();
        let (snd_start, _) = pair.snd.accessible_range().unwrap();
        assert_eq!(fst_end, snd_start);
        assert_eq!(pair.fst.region_id(), 0);
        assert_eq!(pair.snd.region_id(), 1);
    }

    #[test]
    fn new_regions_respects_pool_bounds() {
        assert!(GranularCortexM::new_regions(
            1,
            PtrU8::new(0x2000_0000),
            1024, // Pool too small for 2048 + slack.
            2048,
            Permissions::ReadWriteOnly,
        )
        .is_none());
    }

    #[test]
    fn update_regions_grows_within_available() {
        // Create 2000 B, then grow to 3000 B within 4096 available.
        let pair = GranularCortexM::new_regions(
            1,
            PtrU8::new(0x2000_0000),
            0x2_0000,
            2000,
            Permissions::ReadWriteOnly,
        )
        .unwrap();
        let (start, end) = crate::mpu::pair_span(&pair.fst, &pair.snd).unwrap();
        let available = end - start;
        let updated = GranularCortexM::update_regions(
            1,
            PtrU8::new(start),
            available,
            available - 8,
            Permissions::ReadWriteOnly,
        )
        .unwrap();
        let (_, new_end) = crate::mpu::pair_span(&updated.fst, &updated.snd).unwrap();
        assert!(new_end - start >= available - 8);
        assert!(new_end - start <= available, "must not exceed grant bound");
    }

    #[test]
    fn update_regions_rejects_overgrowth() {
        assert!(GranularCortexM::update_regions(
            1,
            PtrU8::new(0x2000_0000),
            2048,
            4096, // More than available.
            Permissions::ReadWriteOnly,
        )
        .is_none());
    }

    #[test]
    fn configured_hardware_enforces_exactly_the_accessible_span() {
        let mpu = GranularCortexM::with_fresh_hardware();
        let pair = GranularCortexM::new_regions(
            1,
            PtrU8::new(0x2000_0040),
            0x2_0000,
            3000,
            Permissions::ReadWriteOnly,
        )
        .unwrap();
        let (start, end) = crate::mpu::pair_span(&pair.fst, &pair.snd).unwrap();
        let regions = [pair.fst, pair.snd];
        mpu.configure_mpu(&regions);
        let hw = mpu.hardware();
        let hw = hw.borrow();
        // Every 64-byte step inside the span is user-writable; the bytes
        // just outside are not.
        let mut addr = start;
        while addr < end {
            assert!(
                hw.check(addr, 1, AccessType::Write, Privilege::Unprivileged)
                    .allowed(),
                "{addr:#x} inside span denied"
            );
            addr += 64;
        }
        assert!(!hw
            .check(end, 1, AccessType::Write, Privilege::Unprivileged)
            .allowed());
        assert!(!hw
            .check(start - 1, 1, AccessType::Read, Privilege::Unprivileged)
            .allowed());
    }

    #[test]
    fn geometry_postconditions_hold_across_grid() {
        for start in (0x2000_0000..0x2000_0800).step_by(0x60) {
            for total in (64..8192).step_by(389) {
                if let Some(g) = choose_geometry(start, 0x4_0000, total) {
                    assert!(g.accessible() > total);
                    assert!(g.enabled_subregions >= 1 && g.enabled_subregions <= 16);
                    assert!(g.base % g.region_size == 0);
                    assert!(g.base >= start);
                }
            }
        }
        assert_eq!(tt_contracts::violation_count(), 0);
    }

    #[test]
    fn configure_writes_regions_in_slot_order() {
        // The §6.1 testing-caught bug: "the order in which regions were
        // written did not match the order of the region ids". The granular
        // driver must commit RASR writes in ascending slot order.
        let mpu = GranularCortexM::with_fresh_hardware();
        let regions: Vec<CortexMRegion> = (0..8).map(CortexMRegion::unset).collect();
        mpu.configure_mpu(&regions);
        let hw = mpu.hardware();
        let order: Vec<usize> = hw.borrow_mut().drain_write_order().collect();
        assert_eq!(order, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn zero_total_size_is_rejected() {
        assert!(choose_geometry(0x2000_0000, 0x1000, 0).is_none());
    }
}
