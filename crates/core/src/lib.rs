//! TickTock's core contribution: the granular MPU abstraction and the
//! verified, hardware-agnostic process-memory allocator (paper §3.5, §4).
//!
//! The crate decomposes exactly as the paper's proof does:
//!
//! * [`region`] — the `RegionDescriptor` abstraction with its associated
//!   refinements (Fig. 5, §4.1);
//! * [`mpu`] — the granular `Mpu` trait (Fig. 3b);
//! * [`breaks`] — `AppBreaks`, the kernel's logical view of process memory
//!   with the Fig. 6 invariants (§4.2);
//! * [`allocator`] — `AppMemoryAllocator`, generic over the MPU, holding
//!   the logical↔hardware correspondence invariant (§4.3, Fig. 4b);
//! * [`cortexm`] / [`riscv`] — the per-architecture drivers that implement
//!   the refined contracts down to register bits (§4.4);
//! * [`dma`] — the safe `DmaCell` interface (§4.6);
//! * [`obligations`] — the Figure 12 "TickTock (Granular)" verification
//!   workload.

#![warn(missing_docs)]

pub mod allocator;
pub mod breaks;
pub mod cortexm;
pub mod dma;
pub mod mpu;
pub mod obligations;
pub mod region;
pub mod riscv;

pub use allocator::{AllocateAppMemoryError, AppMemoryAllocator, UpdateError};
pub use breaks::{AppBreaks, BreakError};
pub use cortexm::{CortexMRegion, GranularCortexM};
pub use dma::{DmaBuffer, DmaCell, DmaError, DmaWrapper, SimDmaEngine};
pub use mpu::Mpu;
pub use region::{OptPair, Pair, RArray, RegionDescriptor};
pub use riscv::{GranularPmp, GranularPmpE310, GranularPmpEsp32C3, GranularPmpIbex, PmpRegion};
