//! Verification obligations for the granular kernel — the
//! "TickTock (Granular)" row of Figure 12.
//!
//! The granular redesign "slashes the total verification time down
//! considerably from over five minutes to about half a minute" (§6.3)
//! because the proof decomposes: each driver discharges small, local
//! region laws, and the allocator's invariant is checked against the
//! *abstract* RegionDescriptor contract rather than re-deriving hardware
//! arithmetic. The obligations below have exactly that compositional
//! shape, so the Fig. 12 time ratio emerges from structure, not tuning.

use crate::allocator::AppMemoryAllocator;
use crate::cortexm::{CortexMRegion, GranularCortexM};
use crate::mpu::Mpu;
use crate::region::RegionDescriptor;
use crate::riscv::{GranularPmpE310, GranularPmpIbex};
use tt_contracts::obligation::{CheckResult, Registry};
use tt_contracts::ContractKind;
use tt_hw::{Permissions, PtrU8};

/// Component name for the Figure 12 grouping.
pub const COMPONENT: &str = "TickTock (Granular)";

const RAM: usize = 0x2000_0000;
const FLASH: usize = 0x0004_0000;

/// Registers the granular-kernel obligations.
pub fn register_obligations(registry: &mut Registry, density: usize) {
    let d = density.max(1);

    // Driver law: CortexMRegion start/size decode exactly what new()
    // encoded, for every (subregion count, size exponent) pair — a small,
    // local domain (the compositional win).
    registry.add_fn(
        COMPONENT,
        "CortexMRegion::RegionDescriptor",
        ContractKind::Post,
        move || {
            let mut cases = 0u64;
            for _ in 0..d {
                for k in 1..=8usize {
                    for exp in 8..=17u32 {
                        let size = 1usize << exp;
                        let base = 0x2000_0000 & !(size - 1);
                        let r = CortexMRegion::new(0, base, size, k, Permissions::ReadWriteOnly);
                        let ok = r.start().map(PtrU8::as_usize) == Some(base)
                            && r.size() == Some(k * (size / 8))
                            && r.is_set()
                            && r.matches_permissions(Permissions::ReadWriteOnly)
                            && !r.overlaps(base + k * (size / 8), usize::MAX)
                            && r.overlaps(base, base + 1);
                        if !ok {
                            return CheckResult::Refuted {
                                counterexample: format!("k={k} size={size}"),
                            };
                        }
                        cases += 1;
                    }
                }
            }
            CheckResult::Verified { cases }
        },
    );

    // Driver law: new_regions' pair is contiguous, starts in the pool, and
    // strictly exceeds the request.
    registry.add_fn(
        COMPONENT,
        "GranularCortexM::new_regions",
        ContractKind::Post,
        move || {
            let mut cases = 0u64;
            for si in 0..(4 * d) {
                let start = RAM + si * 96 + (si % 3) * 4;
                for total in (64..6000).step_by(499) {
                    let Some(pair) = GranularCortexM::new_regions(
                        1,
                        PtrU8::new(start),
                        0x2_0000,
                        total,
                        Permissions::ReadWriteOnly,
                    ) else {
                        continue;
                    };
                    let Some((s, e)) = crate::mpu::pair_span(&pair.fst, &pair.snd) else {
                        return CheckResult::Refuted {
                            counterexample: format!("unset pair for total={total}"),
                        };
                    };
                    if !(s >= start && e - s > total && e <= start + 0x2_0000) {
                        return CheckResult::Refuted {
                            counterexample: format!("span [{s:#x},{e:#x}) for total={total}"),
                        };
                    }
                    cases += 1;
                }
            }
            CheckResult::Verified { cases }
        },
    );

    // Driver law: update_regions never exceeds the available window.
    registry.add_fn(
        COMPONENT,
        "GranularCortexM::update_regions",
        ContractKind::Post,
        move || {
            let mut cases = 0u64;
            for _ in 0..d {
                for available in [2048usize, 3072, 4096, 6144] {
                    for total in (64..available).step_by(431) {
                        let Some(pair) = GranularCortexM::update_regions(
                            1,
                            PtrU8::new(RAM),
                            available,
                            total,
                            Permissions::ReadWriteOnly,
                        ) else {
                            continue;
                        };
                        let (s, e) = crate::mpu::pair_span(&pair.fst, &pair.snd).unwrap();
                        if !(s == RAM && e - s >= total && e - s <= available) {
                            return CheckResult::Refuted {
                                counterexample: format!("avail={available} total={total}"),
                            };
                        }
                        cases += 1;
                    }
                }
            }
            CheckResult::Verified { cases }
        },
    );

    // Driver law: PMP regions decode their TOR encodings; both
    // granularities.
    registry.add_fn(
        COMPONENT,
        "PmpRegion::RegionDescriptor",
        ContractKind::Post,
        move || {
            let mut cases = 0u64;
            for _ in 0..d {
                for total in (8..4096).step_by(197) {
                    let p4 = GranularPmpE310::new_regions(
                        1,
                        PtrU8::new(0x8000_0000),
                        0x8000,
                        total,
                        Permissions::ReadWriteOnly,
                    );
                    let p8 = GranularPmpIbex::new_regions(
                        1,
                        PtrU8::new(0x1000_0000),
                        0x8000,
                        total,
                        Permissions::ReadWriteOnly,
                    );
                    for (pair, g) in [(p4, 4usize), (p8, 8)] {
                        let Some(pair) = pair else { continue };
                        let (s, e) = pair.fst.accessible_range().unwrap();
                        if !(s % g == 0 && (e - s) % g == 0 && e - s > total) {
                            return CheckResult::Refuted {
                                counterexample: format!("g={g} total={total}"),
                            };
                        }
                        cases += 1;
                    }
                }
            }
            CheckResult::Verified { cases }
        },
    );

    // Allocator invariant: holds after allocation and after arbitrary
    // sequences of brk/grant operations — checked against the ABSTRACT
    // region interface, with the Cortex-M driver instantiated.
    registry.add_fn(
        COMPONENT,
        "AppMemoryAllocator::invariant",
        ContractKind::Invariant,
        move || {
            let mut cases = 0u64;
            for seed in 0..(8 * d as u64) {
                let mut x = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
                let mut next = |m: u64| {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    x % m.max(1)
                };
                let app = 512 + next(4096) as usize;
                let kernel = 256 + next(1024) as usize;
                let Ok(mut a) = AppMemoryAllocator::<GranularCortexM>::allocate_app_memory(
                    PtrU8::new(RAM + (next(64) as usize) * 4),
                    0x2_0000,
                    0,
                    app,
                    kernel,
                    PtrU8::new(FLASH),
                    0x1000,
                ) else {
                    continue;
                };
                for _op in 0..12 {
                    let choice = next(3);
                    match choice {
                        0 => {
                            let target = a.breaks.memory_start.as_usize()
                                + 1
                                + next((a.breaks.memory_size) as u64) as usize;
                            let _ = a.update_app_memory(PtrU8::new(target));
                        }
                        1 => {
                            let _ = a.allocate_grant(8 + next(256) as usize);
                        }
                        _ => {
                            let addr = a.breaks.memory_start.as_usize() + next(8192) as usize;
                            let _ = a.buffer_in_app_memory(PtrU8::new(addr), next(512) as usize);
                        }
                    }
                    if !(a.can_access_flash() && a.can_access_ram() && a.cannot_access_other()) {
                        return CheckResult::Refuted {
                            counterexample: format!("seed={seed} after op {choice}"),
                        };
                    }
                    cases += 1;
                }
                let violations = tt_contracts::take_violations();
                if !violations.is_empty() {
                    return CheckResult::Refuted {
                        counterexample: format!("seed={seed}: {}", violations[0]),
                    };
                }
            }
            CheckResult::Verified { cases }
        },
    );

    // AppBreaks: the Fig. 6 invariants reject every bad geometry in a
    // stratified sample.
    registry.add_fn(
        COMPONENT,
        "AppBreaks::invariant",
        ContractKind::Invariant,
        move || {
            let mut cases = 0u64;
            for _ in 0..d {
                for (ab_off, kb_off, ok) in [
                    (0x400usize, 0x800usize, true),
                    (0x800, 0x400, false),  // app_break past kernel_break.
                    (0x800, 0x800, false),  // Equal: strict < violated.
                    (0x0, 0x1, true),       // Minimal legal gap.
                    (0x400, 0x1001, false), // kernel_break past block end.
                ] {
                    let violations = tt_contracts::with_mode(tt_contracts::Mode::Observe, || {
                        let _ = crate::breaks::AppBreaks::new(
                            PtrU8::new(RAM),
                            0x1000,
                            PtrU8::new(RAM + ab_off),
                            PtrU8::new(RAM + kb_off),
                            PtrU8::new(FLASH),
                            0x1000,
                        );
                        tt_contracts::take_violations()
                    });
                    if violations.is_empty() != ok {
                        return CheckResult::Refuted {
                            counterexample: format!("ab=+{ab_off:#x} kb=+{kb_off:#x}"),
                        };
                    }
                    cases += 1;
                }
            }
            CheckResult::Verified { cases }
        },
    );

    // The bulk of the granular kernel: builtin safety only (fast).
    registry.add_builtin_safety(
        COMPONENT,
        &[
            "RegionDescriptor::can_access",
            "RegionDescriptor::accessible_range",
            "RArray::new_unset",
            "RArray::get",
            "RArray::set",
            "RArray::iter",
            "pair_span",
            "AppBreaks::new",
            "AppBreaks::memory_end",
            "AppBreaks::ram_range",
            "AppBreaks::grant_range",
            "AppBreaks::flash_range",
            "AppBreaks::free_gap",
            "AppBreaks::set_app_break",
            "AppBreaks::set_kernel_break",
            "AppMemoryAllocator::can_access_flash",
            "AppMemoryAllocator::can_access_ram",
            "AppMemoryAllocator::cannot_access_other",
            "AppMemoryAllocator::accessible_span",
            "AppMemoryAllocator::allocate_app_memory",
            "AppMemoryAllocator::update_app_memory",
            "AppMemoryAllocator::allocate_grant",
            "AppMemoryAllocator::buffer_in_app_memory",
            "AppMemoryAllocator::configure_mpu",
            "CortexMRegion::new",
            "CortexMRegion::exact",
            "CortexMRegion::unset",
            "CortexMRegion::start",
            "CortexMRegion::size",
            "CortexMRegion::is_set",
            "CortexMRegion::matches_permissions",
            "CortexMRegion::overlaps",
            "CortexMRegion::enabled_prefix",
            "GranularCortexM::choose_geometry",
            "GranularCortexM::geometry_to_pair",
            "GranularCortexM::create_exact_region",
            "GranularCortexM::configure_mpu",
            "GranularCortexM::disable_mpu",
            "PmpRegion::new",
            "PmpRegion::unset",
            "PmpRegion::start",
            "PmpRegion::size",
            "PmpRegion::is_set",
            "PmpRegion::matches_permissions",
            "PmpRegion::overlaps",
            "GranularPmp::new_regions",
            "GranularPmp::update_regions",
            "GranularPmp::create_exact_region",
            "GranularPmp::configure_mpu",
            "encode_permissions(arm)",
            "encode_permissions(pmp)",
            "DmaCell::new",
            "DmaCell::place",
            "DmaCell::completed",
            "DmaCell::operation_finished",
            "DmaCell::busy",
            "DmaWrapper::base",
            "DmaWrapper::len",
            "DmaBuffer::new",
            "DmaBuffer::range",
            "SimDmaEngine::start",
            "SimDmaEngine::complete",
            "SimDmaEngine::busy",
            "granular_process::create",
            "granular_process::restart_process",
            "granular_process::brk",
            "granular_process::sbrk",
            "granular_process::allocate_grant",
            "Grant::enter",
            "granular_process::build_readonly_buffer",
            "granular_process::build_readwrite_buffer",
            "granular_process::setup_mpu",
        ],
    );

    // Trusted lemmas used by the granular proof (checked in `lemmas`, the
    // Lean stand-in, not here).
    for f in [
        "lemma_pow2_octet",
        "lemma_pow2_min_region",
        "lemma_pow2_eighth",
        "lemma_align_up_bound",
        "lemma_subregion_in_region",
    ] {
        registry.add_trusted(COMPONENT, f, ContractKind::Lemma);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tt_contracts::verifier::Verifier;

    #[test]
    fn granular_obligations_all_verify() {
        let mut r = Registry::new();
        register_obligations(&mut r, 1);
        let report = Verifier::new().verify(&r);
        assert!(
            report.all_verified(),
            "refuted: {:?}",
            report
                .refuted()
                .iter()
                .map(|f| (&f.function, &f.refutations))
                .collect::<Vec<_>>()
        );
        assert!(r.function_count(COMPONENT) > 60);
    }

    #[test]
    fn granular_obligations_are_individually_small() {
        // The compositional property behind Fig. 12: no single granular
        // function dominates (contrast the monolithic kernel, where one
        // function took > 90% of the time — asserted in tests/fig12.rs,
        // which has both crates in scope).
        let mut r = Registry::new();
        register_obligations(&mut r, 1);
        let report = Verifier::new().verify(&r);
        let stats = report.component_stats(COMPONENT);
        assert!(
            stats.max.as_secs_f64() <= stats.total.as_secs_f64() * 0.9,
            "one granular obligation dominates: max {:?} of total {:?}",
            stats.max,
            stats.total
        );
    }
}
