//! The RISC-V granular PMP driver (paper §4.4).
//!
//! A `PmpRegion` is a TOR entry pair: entry `2i` supplies the bottom
//! address, entry `2i + 1` the top plus the permission bits. The PMP "is
//! far more flexible in terms of region start addresses and sizes" (§3.5),
//! so `start`/`size` are the full region bounds with no subregion games —
//! only the chip's granularity `G` constrains them.

use crate::mpu::Mpu;
use crate::region::{OptPair, Pair, RegionDescriptor};
use std::cell::RefCell;
use std::rc::Rc;
use tt_contracts::math::align_up;
use tt_contracts::{ensures, requires};
use tt_hw::cycles::{charge_n, Cost};
use tt_hw::riscv::pmp::{AddressMode, PMP_R, PMP_W, PMP_X};
use tt_hw::riscv::RiscvPmp;
use tt_hw::{Permissions, PtrU8};

/// Encodes logical permissions into pmpcfg R/W/X bits.
pub fn encode_permissions(perms: Permissions) -> u8 {
    match perms {
        Permissions::ReadWriteExecute => PMP_R | PMP_W | PMP_X,
        Permissions::ReadWriteOnly => PMP_R | PMP_W,
        Permissions::ReadExecuteOnly => PMP_R | PMP_X,
        Permissions::ReadOnly => PMP_R,
        Permissions::ExecuteOnly => PMP_X,
    }
}

/// One granular PMP region: a staged TOR entry pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PmpRegion {
    region_id: usize,
    /// pmpcfg byte of the top entry (permissions + TOR mode), 0 when unset.
    cfg: u8,
    /// pmpaddr of the bottom entry (`start >> 2`).
    addr_lo: u32,
    /// pmpaddr of the top entry (`end >> 2`).
    addr_hi: u32,
}

impl PmpRegion {
    /// Builds a region covering `[start, end)` with the given permissions.
    pub fn new(region_id: usize, start: usize, end: usize, perms: Permissions) -> Self {
        requires!("PmpRegion::new", start < end);
        requires!(
            "PmpRegion::new",
            start.is_multiple_of(4) && end.is_multiple_of(4)
        );
        charge_n(Cost::Alu, 4);
        Self {
            region_id,
            cfg: encode_permissions(perms) | (AddressMode::Tor.encode() << 3),
            addr_lo: (start >> 2) as u32,
            addr_hi: (end >> 2) as u32,
        }
    }

    /// The staged pmpcfg byte for the top entry.
    pub fn cfg_value(&self) -> u8 {
        self.cfg
    }

    /// The staged pmpaddr values (bottom, top).
    pub fn addr_values(&self) -> (u32, u32) {
        (self.addr_lo, self.addr_hi)
    }
}

impl RegionDescriptor for PmpRegion {
    fn unset(region_id: usize) -> Self {
        Self {
            region_id,
            cfg: 0,
            addr_lo: 0,
            addr_hi: 0,
        }
    }

    fn start(&self) -> Option<PtrU8> {
        self.is_set()
            .then(|| PtrU8::new((self.addr_lo as usize) << 2))
    }

    fn size(&self) -> Option<usize> {
        self.is_set()
            .then(|| ((self.addr_hi - self.addr_lo) as usize) << 2)
    }

    fn is_set(&self) -> bool {
        AddressMode::decode(self.cfg >> 3) == AddressMode::Tor && self.addr_hi > self.addr_lo
    }

    fn matches_permissions(&self, perms: Permissions) -> bool {
        self.is_set() && (self.cfg & 0b111) == encode_permissions(perms)
    }

    fn overlaps(&self, lo: usize, hi: usize) -> bool {
        match self.accessible_range() {
            Some((s, e)) => lo < hi && s < hi && lo < e,
            None => false,
        }
    }

    fn region_id(&self) -> usize {
        self.region_id
    }
}

/// The granular PMP driver, parameterized by the chip granularity `G`.
#[derive(Debug, Clone)]
pub struct GranularPmp<const G: usize> {
    hardware: Rc<RefCell<RiscvPmp>>,
}

/// SiFive E310 instantiation (G = 4).
pub type GranularPmpE310 = GranularPmp<4>;
/// ESP32-C3 instantiation (G = 4).
pub type GranularPmpEsp32C3 = GranularPmp<4>;
/// Ibex / Earl Grey instantiation (G = 8).
pub type GranularPmpIbex = GranularPmp<8>;

impl<const G: usize> GranularPmp<G> {
    /// Creates a driver over the given hardware.
    pub fn new(hardware: Rc<RefCell<RiscvPmp>>) -> Self {
        Self { hardware }
    }

    /// Creates a driver with fresh hardware for the given chip.
    pub fn with_fresh_hardware(chip: tt_hw::riscv::PmpChip) -> Self {
        assert_eq!(chip.granularity(), G, "chip granularity mismatch");
        Self::new(Rc::new(RefCell::new(RiscvPmp::new(chip))))
    }

    /// Returns the hardware handle.
    pub fn hardware(&self) -> Rc<RefCell<RiscvPmp>> {
        Rc::clone(&self.hardware)
    }
}

impl<const G: usize> Mpu for GranularPmp<G> {
    type Region = PmpRegion;

    fn new_regions(
        max_region_id: usize,
        unalloc_start: PtrU8,
        unalloc_size: usize,
        total_size: usize,
        permissions: Permissions,
    ) -> OptPair<PmpRegion> {
        requires!("GranularPmp::new_regions", (1..8).contains(&max_region_id));
        if total_size == 0 {
            return None;
        }
        charge_n(Cost::Alu, 5);
        let start = align_up(unalloc_start.as_usize(), G);
        // `+1` before rounding keeps the accessible span strictly larger
        // than the request, preserving `app_break < kernel_break`.
        let accessible = align_up(total_size + 1, G);
        let end = start + accessible;
        ensures!("GranularPmp::new_regions", accessible > total_size);
        if end > unalloc_start.as_usize() + unalloc_size {
            return None;
        }
        Some(Pair {
            fst: PmpRegion::new(max_region_id - 1, start, end, permissions),
            snd: PmpRegion::unset(max_region_id),
        })
    }

    fn update_regions(
        max_region_id: usize,
        region_start: PtrU8,
        available_size: usize,
        total_size: usize,
        permissions: Permissions,
    ) -> OptPair<PmpRegion> {
        requires!(
            "GranularPmp::update_regions",
            (1..8).contains(&max_region_id)
        );
        charge_n(Cost::Alu, 4);
        if total_size == 0 || total_size > available_size {
            return None;
        }
        let start = region_start.as_usize();
        if !start.is_multiple_of(G) {
            return None;
        }
        let accessible = align_up(total_size, G).min(available_size);
        if accessible < total_size {
            return None;
        }
        ensures!("GranularPmp::update_regions", accessible <= available_size);
        Some(Pair {
            fst: PmpRegion::new(max_region_id - 1, start, start + accessible, permissions),
            snd: PmpRegion::unset(max_region_id),
        })
    }

    fn create_exact_region(
        region_id: usize,
        start: PtrU8,
        size: usize,
        permissions: Permissions,
    ) -> Option<PmpRegion> {
        charge_n(Cost::Alu, 3);
        if size == 0 || !start.as_usize().is_multiple_of(G) || !size.is_multiple_of(G) {
            return None;
        }
        Some(PmpRegion::new(
            region_id,
            start.as_usize(),
            start.as_usize() + size,
            permissions,
        ))
    }

    // TRUSTED: CSR write-out is part of the TCB (§6.1).
    fn configure_mpu(&self, regions: &[PmpRegion]) {
        let mut hw = self.hardware.borrow_mut();
        let slots = Self::placement(&hw, regions);
        for (region, slot) in regions.iter().zip(slots) {
            let Some(base) = slot else {
                continue;
            };
            let (lo, hi) = region.addr_values();
            let cfg = region.cfg_value();
            // Diff-commit: skip all four CSR writes when the live entry
            // pair already holds this region's staged values.
            if tt_hw::commit_cache::enabled()
                && hw.entry_matches(base, lo, 0)
                && hw.entry_matches(base + 1, hi, cfg)
            {
                tt_hw::commit_cache::note_elided(4);
                continue;
            }
            hw.write_addr(base, lo);
            hw.write_cfg(base, 0);
            hw.write_addr(base + 1, hi);
            hw.write_cfg(base + 1, cfg);
        }
    }

    fn disable_mpu(&self) {
        // Kernel execution is M-mode: unlocked PMP entries do not constrain
        // it, so "disabling" is a no-op, as on real hardware.
    }

    // `reenable_mpu` keeps the default no-op: nothing was disabled.

    fn hardware_matches(&self, regions: &[PmpRegion]) -> bool {
        let hw = self.hardware.borrow();
        let slots = Self::placement(&hw, regions);
        regions.iter().zip(slots).all(|(region, slot)| {
            let Some(base) = slot else {
                // No pair: fine for an unset region (a bricked pair's
                // locked garbage is confined to the faulted process's own
                // extents), a config failure for a set one.
                return !region.is_set();
            };
            let (lo, hi) = region.addr_values();
            hw.entry_matches(base, lo, 0) && hw.entry_matches(base + 1, hi, region.cfg_value())
        })
    }
}

/// Upper bound on PMP entry pairs across every supported chip (largest
/// chip: 16 entries = 8 pairs; headroom for doubling).
const MAX_PAIRS: usize = 16;
/// Upper bound on staged regions per process.
const MAX_REGIONS: usize = 16;

impl<const G: usize> GranularPmp<G> {
    /// Returns `true` when either entry of the pair at `base` is locked.
    /// pmpcfg.L is sticky until hart reset, so a locked pair can never be
    /// rewritten: it must not host a region (and a locked bottom entry
    /// would silently corrupt the pair's TOR range).
    fn pair_bricked(hw: &RiscvPmp, base: usize) -> bool {
        hw.entry(base).locked() || hw.entry(base + 1).locked()
    }

    /// Deterministic slot placement: each region keeps its default entry
    /// pair (`region_id * 2`) unless that pair is bricked by a locked
    /// entry — a fault-injected (or silicon-failed) lock bit — in which
    /// case a *set* region relocates to the lowest unbricked pair no
    /// other region claims. `None` means nothing can (or need) be
    /// written: an unset region on a bricked pair, or a set region with
    /// no usable pair left (caught by `hardware_matches` and handled by
    /// the kernel's fault path).
    ///
    /// A pure function of the staged regions and the hardware lock
    /// pattern, so the commit and consistency-check paths always agree.
    ///
    /// Returned as a fixed-size array (entries beyond `regions.len()`
    /// stay `None`): this runs on the per-commit and per-scrub hot
    /// paths, where two heap allocations per call dominated the
    /// RISC-V fleet profile.
    fn placement(hw: &RiscvPmp, regions: &[PmpRegion]) -> [Option<usize>; MAX_REGIONS] {
        let pairs = hw.chip().entries() / 2;
        assert!(
            pairs <= MAX_PAIRS && regions.len() <= MAX_REGIONS,
            "PMP geometry exceeds placement bounds"
        );
        let mut used = [false; MAX_PAIRS];
        let mut slots = [None; MAX_REGIONS];
        // Set regions first: default pair when unbricked …
        for (slot, region) in slots.iter_mut().zip(regions) {
            let pair = region.region_id();
            if region.is_set() && pair < pairs && !Self::pair_bricked(hw, pair * 2) {
                *slot = Some(pair * 2);
                used[pair] = true;
            }
        }
        // … else the lowest unbricked pair left (its four writes overwrite
        // whatever junk the pair held, so no separate clear is needed).
        for (slot, region) in slots.iter_mut().zip(regions) {
            if slot.is_some() || !region.is_set() {
                continue;
            }
            if let Some(pair) = (0..pairs).find(|p| !used[*p] && !Self::pair_bricked(hw, p * 2)) {
                *slot = Some(pair * 2);
                used[pair] = true;
            }
        }
        // Unset regions last: they only clear stale state at their default
        // pair, and only when no live region claimed it.
        for (slot, region) in slots.iter_mut().zip(regions) {
            let pair = region.region_id();
            if !region.is_set() && pair < pairs && !used[pair] && !Self::pair_bricked(hw, pair * 2)
            {
                *slot = Some(pair * 2);
                used[pair] = true;
            }
        }
        slots
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tt_hw::mem::{AccessType, Privilege, ProtectionUnit};
    use tt_hw::riscv::PmpChip;

    const RAM: usize = 0x8000_0000;

    #[test]
    fn region_encodes_tor_bounds() {
        let r = PmpRegion::new(0, RAM, RAM + 0x1000, Permissions::ReadWriteOnly);
        assert!(r.is_set());
        assert_eq!(r.start().unwrap().as_usize(), RAM);
        assert_eq!(r.size().unwrap(), 0x1000);
        assert!(r.matches_permissions(Permissions::ReadWriteOnly));
        assert!(!r.matches_permissions(Permissions::ReadExecuteOnly));
        assert!(r.overlaps(RAM + 0xFFF, RAM + 0x2000));
        assert!(!r.overlaps(RAM + 0x1000, RAM + 0x2000));
    }

    #[test]
    fn unset_region_is_inert() {
        let r = PmpRegion::unset(3);
        assert!(!r.is_set());
        assert_eq!(r.start(), None);
        assert!(!r.overlaps(0, usize::MAX));
    }

    #[test]
    fn regions_relocate_off_a_locked_pair() {
        // A fault-injected lock bit bricks entry 1 (pair 0). The commit
        // must relocate the region to a free pair — locked entries ignore
        // writes until hart reset, so rewriting in place is impossible.
        let drv = GranularPmpEsp32C3::with_fresh_hardware(PmpChip::Esp32C3);
        let ram = PmpRegion::new(0, RAM, RAM + 0xC00, Permissions::ReadWriteOnly);
        let flash = PmpRegion::new(2, 0x4204_0000, 0x4204_1000, Permissions::ReadExecuteOnly);
        let regions = [ram, flash];
        drv.configure_mpu(&regions);
        assert!(drv.hardware_matches(&regions));
        {
            let hw = drv.hardware();
            let mut hw = hw.borrow_mut();
            let cfg = hw.entry(1).cfg;
            hw.write_cfg(1, cfg | 0x80);
            assert!(hw.entry(1).locked());
        }
        assert!(!drv.hardware_matches(&regions), "brick detected");
        drv.configure_mpu(&regions);
        assert!(drv.hardware_matches(&regions), "region relocated");
        let hw = drv.hardware();
        let hw = hw.borrow();
        // Pair 1 (entries 2, 3) now hosts the RAM region.
        assert_eq!(hw.entry(3).cfg, ram.cfg_value());
        assert!(hw
            .check(RAM + 0x400, 4, AccessType::Write, Privilege::Unprivileged)
            .allowed());
    }

    #[test]
    fn unset_slots_do_not_starve_relocation() {
        // The allocator's region slice carries unset placeholder slots;
        // a relocated *set* region must win a pair ahead of them (the
        // kernel-run regression behind the campaign's bystander faults).
        let drv = GranularPmpE310::with_fresh_hardware(PmpChip::SifiveE310);
        let regions = [
            PmpRegion::new(0, RAM, RAM + 0xC00, Permissions::ReadWriteOnly),
            PmpRegion::unset(1),
            PmpRegion::new(2, 0x2040_0000, 0x2040_1000, Permissions::ReadExecuteOnly),
            PmpRegion::unset(3),
        ];
        drv.configure_mpu(&regions);
        {
            let hw = drv.hardware();
            let mut hw = hw.borrow_mut();
            let cfg = hw.entry(1).cfg;
            hw.write_cfg(1, cfg | 0x80);
        }
        drv.configure_mpu(&regions);
        assert!(drv.hardware_matches(&regions));
        let hw = drv.hardware();
        let hw = hw.borrow();
        assert!(hw
            .check(RAM, 4, AccessType::Read, Privilege::Unprivileged)
            .allowed());
    }

    #[test]
    fn new_regions_single_region_with_slack() {
        let pair = GranularPmpE310::new_regions(
            1,
            PtrU8::new(RAM + 2),
            0x4000,
            1000,
            Permissions::ReadWriteOnly,
        )
        .unwrap();
        assert!(pair.fst.is_set());
        assert!(!pair.snd.is_set());
        let (start, end) = pair.fst.accessible_range().unwrap();
        assert_eq!(start % 4, 0);
        assert!(end - start > 1000);
        assert!(end - start <= 1008, "PMP slack is at most one granule + 1");
    }

    #[test]
    fn ibex_granularity_is_respected() {
        let pair = GranularPmpIbex::new_regions(
            1,
            PtrU8::new(0x1000_0001),
            0x4000,
            100,
            Permissions::ReadWriteOnly,
        )
        .unwrap();
        let (start, end) = pair.fst.accessible_range().unwrap();
        assert_eq!(start % 8, 0);
        assert_eq!((end - start) % 8, 0);
    }

    #[test]
    fn pool_bounds_enforced() {
        assert!(GranularPmpE310::new_regions(
            1,
            PtrU8::new(RAM),
            512,
            1000,
            Permissions::ReadWriteOnly
        )
        .is_none());
    }

    #[test]
    fn update_stays_within_available() {
        let updated = GranularPmpE310::update_regions(
            1,
            PtrU8::new(RAM),
            2048,
            2000,
            Permissions::ReadWriteOnly,
        )
        .unwrap();
        let (start, end) = updated.fst.accessible_range().unwrap();
        assert_eq!(start, RAM);
        assert!(end - start >= 2000);
        assert!(end - start <= 2048);
        assert!(GranularPmpE310::update_regions(
            1,
            PtrU8::new(RAM),
            2048,
            4096,
            Permissions::ReadWriteOnly
        )
        .is_none());
    }

    #[test]
    fn configured_pmp_enforces_span_on_all_chips() {
        for chip in PmpChip::ALL {
            let ram = match chip {
                PmpChip::SifiveE310 => 0x8000_0000usize,
                PmpChip::Esp32C3 => 0x3FC8_0000,
                PmpChip::IbexEarlGrey => 0x1000_0000,
            };
            let (pair, mpu_regions): (Pair<PmpRegion>, [PmpRegion; 2]) = match chip.granularity() {
                4 => {
                    let p = GranularPmp::<4>::new_regions(
                        1,
                        PtrU8::new(ram),
                        0x4000,
                        1000,
                        Permissions::ReadWriteOnly,
                    )
                    .unwrap();
                    (p, [p.fst, p.snd])
                }
                _ => {
                    let p = GranularPmp::<8>::new_regions(
                        1,
                        PtrU8::new(ram),
                        0x4000,
                        1000,
                        Permissions::ReadWriteOnly,
                    )
                    .unwrap();
                    (p, [p.fst, p.snd])
                }
            };
            let hw = Rc::new(RefCell::new(RiscvPmp::new(chip)));
            match chip.granularity() {
                4 => GranularPmp::<4>::new(Rc::clone(&hw)).configure_mpu(&mpu_regions),
                _ => GranularPmp::<8>::new(Rc::clone(&hw)).configure_mpu(&mpu_regions),
            }
            let (start, end) = pair.fst.accessible_range().unwrap();
            let hw = hw.borrow();
            assert!(hw
                .check(start, 4, AccessType::Write, Privilege::Unprivileged)
                .allowed());
            assert!(hw
                .check(end - 4, 4, AccessType::Read, Privilege::Unprivileged)
                .allowed());
            assert!(!hw
                .check(end, 4, AccessType::Write, Privilege::Unprivileged)
                .allowed());
            assert!(!hw
                .check(start - 4, 4, AccessType::Read, Privilege::Unprivileged)
                .allowed());
        }
    }

    #[test]
    fn exact_region_for_flash() {
        let r = GranularPmpE310::create_exact_region(
            2,
            PtrU8::new(0x2000_0000),
            0x1000,
            Permissions::ReadExecuteOnly,
        )
        .unwrap();
        assert!(r.can_access(0x2000_0000, 0x2000_1000, Permissions::ReadExecuteOnly));
        assert!(GranularPmpE310::create_exact_region(
            2,
            PtrU8::new(0x2000_0001),
            0x1000,
            Permissions::ReadExecuteOnly
        )
        .is_none());
    }
}
