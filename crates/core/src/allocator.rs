//! `AppMemoryAllocator`: the hardware-agnostic process allocator
//! (paper Fig. 4b and §4.3).
//!
//! The allocator is generic over the granular [`Mpu`] abstraction, so the
//! same (once-verified) code runs on Cortex-M and every PMP chip. It owns
//! both the kernel's logical view ([`AppBreaks`]) and the staged MPU
//! regions ([`RArray`]), and maintains the paper's §4.3 invariant at every
//! mutation:
//!
//! * `can_access_flash` — the flash region allows read-execute over
//!   exactly the process code;
//! * `can_access_ram` — the RAM region pair starts at `memory_start`,
//!   covers at least `app_break`, and never reaches `kernel_break`;
//! * `cannot_access_other` — no region overlaps the grant region or any
//!   memory outside the process's own block.
//!
//! Because the breaks are *derived from the regions* (not recomputed), the
//! kernel's view and the hardware-enforced layout agree by construction —
//! the paper's cure for the *disagreement* problem.

use crate::breaks::AppBreaks;
use crate::mpu::{pair_span, Mpu};
use crate::region::{RArray, RegionDescriptor};
use tt_contracts::invariant;
use tt_hw::cycles::{charge_n, Cost};
use tt_hw::{Permissions, PtrU8};

/// Region slot for the lower RAM region.
pub const RAM_REGION_0: usize = 0;
/// Region slot for the upper RAM region (the paper's
/// `MAX_RAM_REGION_NUMBER`).
pub const MAX_RAM_REGION_NUMBER: usize = 1;
/// Region slot for the process flash region (the paper's
/// `FLASH_REGION_NUMBER`).
pub const FLASH_REGION_NUMBER: usize = 2;

/// Errors from the allocation path (the paper's `AllocateAppMemoryError`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocateAppMemoryError {
    /// The RAM regions could not be created under the hardware constraints.
    HeapError,
    /// The flash region could not be created.
    FlashError,
    /// The block (including the grant reservation) exceeds the pool.
    OutOfMemory,
}

/// Errors from post-allocation updates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpdateError {
    /// The requested break is outside the legal window (BUG3's missing
    /// validation, §2.2).
    InvalidBreak,
    /// The hardware cannot cover the requested break.
    HeapError,
    /// The grant region is exhausted.
    OutOfGrantMemory,
}

/// The allocator: logical breaks plus staged MPU regions.
#[derive(Debug, Clone)]
pub struct AppMemoryAllocator<M: Mpu> {
    /// The kernel's logical view of the process layout.
    pub breaks: AppBreaks,
    /// The staged MPU configuration, one descriptor per hardware slot.
    pub regions: RArray<M::Region>,
    /// Commit-cache generation: taken fresh from a thread-global monotonic
    /// counter at construction and on every mutation, so no two logical
    /// configurations — not even across a process restart that rebuilds an
    /// identical layout — ever share a generation number.
    generation: u64,
}

thread_local! {
    static NEXT_GENERATION: std::cell::Cell<u64> = const { std::cell::Cell::new(1) };
}

/// Draws the next commit-cache generation number.
fn next_generation() -> u64 {
    NEXT_GENERATION.with(|g| {
        let v = g.get();
        g.set(v + 1);
        v
    })
}

impl<M: Mpu> AppMemoryAllocator<M> {
    /// `can_access_flash` from §4.3.
    pub fn can_access_flash(&self) -> bool {
        let r = self.regions.get(FLASH_REGION_NUMBER);
        let start = self.breaks.flash_start.as_usize();
        let end = start + self.breaks.flash_size;
        r.can_access(start, end, Permissions::ReadExecuteOnly)
            && !r.overlaps(0, start)
            && !r.overlaps(end, usize::MAX)
    }

    /// `can_access_ram` from §4.3: the RAM pair covers `[memory_start,
    /// app_break)` with read-write permissions and stops at or before
    /// `kernel_break`.
    pub fn can_access_ram(&self) -> bool {
        let fst = self.regions.get(RAM_REGION_0);
        let snd = self.regions.get(MAX_RAM_REGION_NUMBER);
        let Some((start, end)) = pair_span(fst, snd) else {
            return false;
        };
        start == self.breaks.memory_start.as_usize()
            && end >= self.breaks.app_break.as_usize()
            && end <= self.breaks.kernel_break.as_usize()
            && fst.matches_permissions(Permissions::ReadWriteOnly)
            && (!snd.is_set() || snd.matches_permissions(Permissions::ReadWriteOnly))
    }

    /// `cannot_access_other` from §4.3: no region overlaps the grant
    /// region, and no region strays outside the process's own flash and
    /// RAM block.
    pub fn cannot_access_other(&self) -> bool {
        let grant_lo = self.breaks.kernel_break.as_usize();
        let grant_hi = self.breaks.memory_end();
        let ram_lo = self.breaks.memory_start.as_usize();
        let flash_lo = self.breaks.flash_start.as_usize();
        let flash_hi = flash_lo + self.breaks.flash_size;
        self.regions.iter().all(|r| {
            if !r.is_set() {
                return true;
            }
            if r.overlaps(grant_lo, grant_hi) {
                return false;
            }
            let Some((s, e)) = r.accessible_range() else {
                return true;
            };
            // Every set region lies inside the process flash or inside the
            // process RAM block below the grant region.
            (s >= flash_lo && e <= flash_hi) || (s >= ram_lo && e <= grant_lo)
        })
    }

    /// Checks the complete §4.3 invariant (registered as a Flux struct
    /// invariant; here executed at every construction and mutation).
    pub fn check_invariants(&self) {
        invariant!("AppMemoryAllocator", self.can_access_flash());
        invariant!("AppMemoryAllocator", self.can_access_ram());
        invariant!("AppMemoryAllocator", self.cannot_access_other());
    }

    /// The hardware-accessible RAM span `[start, end)` from the regions.
    pub fn accessible_span(&self) -> Option<(usize, usize)> {
        pair_span(
            self.regions.get(RAM_REGION_0),
            self.regions.get(MAX_RAM_REGION_NUMBER),
        )
    }

    /// Allocates process memory (paper Fig. 4b).
    ///
    /// Asks the MPU for up to two regions covering the ideal size, derives
    /// the actual layout **from the returned regions**, and places the
    /// grant reservation after the hardware-accessible span.
    #[allow(clippy::too_many_arguments)]
    pub fn allocate_app_memory(
        unalloc_start: PtrU8,
        unalloc_size: usize,
        min_size: usize,
        app_size: usize,
        kernel_size: usize,
        flash_start: PtrU8,
        flash_size: usize,
    ) -> Result<Self, AllocateAppMemoryError> {
        if app_size == 0 || kernel_size == 0 {
            return Err(AllocateAppMemoryError::HeapError);
        }
        // Ask the MPU for <= two regions covering process RAM.
        charge_n(Cost::Alu, 1);
        let ideal_app_mem_size = std::cmp::max(min_size, app_size);
        let pair = M::new_regions(
            MAX_RAM_REGION_NUMBER,
            unalloc_start,
            unalloc_size,
            ideal_app_mem_size,
            Permissions::ReadWriteOnly,
        )
        .ok_or(AllocateAppMemoryError::HeapError)?;

        // Compute the actual start and size from the `Region`s — the
        // hardware-enforced truth, not a recomputation.
        charge_n(Cost::Alu, 3);
        let memory_start = pair.fst.start().ok_or(AllocateAppMemoryError::HeapError)?;
        let snd_region_size = pair.snd.size().unwrap_or(0);
        let app_mem_size =
            pair.fst.size().ok_or(AllocateAppMemoryError::HeapError)? + snd_region_size;

        // End of process-accessible memory; the grant reservation sits
        // directly after it.
        charge_n(Cost::Alu, 3);
        let app_break = memory_start.offset(app_mem_size);
        let memory_size = app_mem_size + kernel_size;
        charge_n(Cost::Branch, 1);
        if memory_start.as_usize() + memory_size > unalloc_start.as_usize() + unalloc_size {
            return Err(AllocateAppMemoryError::OutOfMemory);
        }
        let kernel_break = memory_start.offset(memory_size);

        let flash_region = M::create_exact_region(
            FLASH_REGION_NUMBER,
            flash_start,
            flash_size,
            Permissions::ReadExecuteOnly,
        )
        .ok_or(AllocateAppMemoryError::FlashError)?;

        let breaks = AppBreaks::new(
            memory_start,
            memory_size,
            app_break,
            kernel_break,
            flash_start,
            flash_size,
        );

        // Set the regions.
        let mut regions: RArray<M::Region> = RArray::new_unset();
        charge_n(Cost::Store, 3);
        regions.set(RAM_REGION_0, pair.fst);
        regions.set(MAX_RAM_REGION_NUMBER, pair.snd);
        regions.set(FLASH_REGION_NUMBER, flash_region);

        let alloc = Self {
            breaks,
            regions,
            generation: next_generation(),
        };
        alloc.check_invariants();
        Ok(alloc)
    }

    /// The `brk`/`sbrk` path: moves the app break and rebuilds the RAM
    /// regions to cover it, never past the grant region.
    ///
    /// The validation at the top is the one whose absence was BUG3: the
    /// break is attacker-controlled and must be checked before any
    /// arithmetic.
    pub fn update_app_memory(&mut self, new_app_break: PtrU8) -> Result<(), UpdateError> {
        charge_n(Cost::Branch, 2);
        let brk = new_app_break.as_usize();
        let memory_start = self.breaks.memory_start;
        if brk <= memory_start.as_usize() || brk >= self.breaks.kernel_break.as_usize() {
            return Err(UpdateError::InvalidBreak);
        }
        charge_n(Cost::Alu, 2);
        let available = self.breaks.kernel_break.as_usize() - memory_start.as_usize();
        let total = brk - memory_start.as_usize();
        let pair = M::update_regions(
            MAX_RAM_REGION_NUMBER,
            memory_start,
            available,
            total,
            Permissions::ReadWriteOnly,
        )
        .ok_or(UpdateError::HeapError)?;
        charge_n(Cost::Store, 2);
        self.regions.set(RAM_REGION_0, pair.fst);
        self.regions.set(MAX_RAM_REGION_NUMBER, pair.snd);
        self.breaks
            .set_app_break(new_app_break)
            .map_err(|_| UpdateError::InvalidBreak)?;
        self.generation = next_generation();
        self.check_invariants();
        Ok(())
    }

    /// Allocates `size` bytes of grant memory by moving the kernel break
    /// down. **No MPU reconfiguration**: the grant region is above the
    /// hardware-accessible span by invariant, so a pointer move plus two
    /// bounds checks suffice — the Fig. 11 `allocate_grant` speedup.
    pub fn allocate_grant(&mut self, size: usize) -> Result<PtrU8, UpdateError> {
        charge_n(Cost::Alu, 3);
        let new_kb = self
            .breaks
            .kernel_break
            .as_usize()
            .checked_sub(size)
            .ok_or(UpdateError::OutOfGrantMemory)?
            & !7; // Grant pointers are 8-aligned.
        charge_n(Cost::Branch, 2);
        let span_end = self.accessible_span().map(|(_, e)| e).unwrap_or(new_kb);
        if new_kb <= self.breaks.app_break.as_usize() || new_kb < span_end {
            return Err(UpdateError::OutOfGrantMemory);
        }
        self.breaks
            .set_kernel_break(PtrU8::new(new_kb))
            .map_err(|_| UpdateError::OutOfGrantMemory)?;
        // The staged regions are untouched, but the grant shrinks the
        // kernel break that `cannot_access_other` is judged against — a
        // cached "nothing changed" verdict must not survive it.
        self.generation = next_generation();
        self.check_invariants();
        Ok(PtrU8::new(new_kb))
    }

    /// Fault-recovery step 1: releases every grant allocation by raising
    /// the kernel break back to the top of the memory block. The staged
    /// regions are untouched (grants were never hardware-accessible), but
    /// the generation moves so no cached commit survives the transition.
    pub fn reclaim_grants(&mut self) -> Result<(), UpdateError> {
        charge_n(Cost::Store, 1);
        let memory_end = PtrU8::new(self.breaks.memory_end());
        self.breaks
            .set_kernel_break(memory_end)
            .map_err(|_| UpdateError::InvalidBreak)?;
        self.generation = next_generation();
        self.check_invariants();
        Ok(())
    }

    /// Fault-recovery step 2: scrubs the staged RAM regions and re-derives
    /// them from the logical breaks — the recovery analogue of the
    /// allocation path's "breaks derive from regions" rule, run in reverse
    /// after a fault may have left the staged state suspect. Nothing is
    /// committed to hardware here; the caller invalidates the commit cache
    /// and the next `configure_mpu` pushes the rebuilt configuration.
    pub fn rederive_regions(&mut self) -> Result<(), UpdateError> {
        charge_n(Cost::Alu, 2);
        let memory_start = self.breaks.memory_start;
        let available = self.breaks.kernel_break.as_usize() - memory_start.as_usize();
        let total = self.breaks.app_break.as_usize() - memory_start.as_usize();
        let pair = M::update_regions(
            MAX_RAM_REGION_NUMBER,
            memory_start,
            available,
            std::cmp::max(total, 1),
            Permissions::ReadWriteOnly,
        )
        .ok_or(UpdateError::HeapError)?;
        charge_n(Cost::Store, 2);
        self.regions.set(RAM_REGION_0, pair.fst);
        self.regions.set(MAX_RAM_REGION_NUMBER, pair.snd);
        self.generation = next_generation();
        self.check_invariants();
        Ok(())
    }

    /// Validates that a process-supplied buffer lies entirely within the
    /// process-accessible RAM — the `allow_readonly`/`allow_readwrite`
    /// check. Pure bounds arithmetic on the logical view; no MPU reads.
    pub fn buffer_in_app_memory(&self, addr: PtrU8, len: usize) -> bool {
        charge_n(Cost::Branch, 2);
        charge_n(Cost::Alu, 2);
        let start = addr.as_usize();
        let Some(end) = start.checked_add(len) else {
            return false;
        };
        start >= self.breaks.memory_start.as_usize() && end <= self.breaks.app_break.as_usize()
    }

    /// Returns the commit-cache generation of the staged configuration.
    /// Any mutation (`allocate_app_memory`, `update_app_memory`,
    /// `allocate_grant`) moves this to a fresh, never-reused number.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Writes the staged configuration into the MPU (`setup_mpu`, run at
    /// every context switch into this process).
    pub fn configure_mpu(&self, mpu: &M) {
        tt_hw::trace::record(tt_hw::trace::TraceEvent::AllocatorCommit {
            regions: self
                .regions
                .as_slice()
                .iter()
                .filter(|r| r.is_set())
                .count() as u8,
        });
        mpu.configure_mpu(self.regions.as_slice());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cortexm::GranularCortexM;
    use crate::riscv::GranularPmpE310;
    use tt_hw::mem::{AccessType, Privilege, ProtectionUnit};

    const RAM: usize = 0x2000_0000;
    const FLASH: usize = 0x0004_0000;

    fn alloc_arm(app_size: usize, kernel_size: usize) -> AppMemoryAllocator<GranularCortexM> {
        AppMemoryAllocator::<GranularCortexM>::allocate_app_memory(
            PtrU8::new(RAM + 0x40),
            0x2_0000,
            0,
            app_size,
            kernel_size,
            PtrU8::new(FLASH),
            0x1000,
        )
        .expect("allocation")
    }

    #[test]
    fn allocation_satisfies_all_invariants() {
        let a = alloc_arm(3000, 1024);
        assert!(a.can_access_flash());
        assert!(a.can_access_ram());
        assert!(a.cannot_access_other());
        assert_eq!(tt_contracts::violation_count(), 0);
    }

    #[test]
    fn breaks_derive_from_hardware_regions() {
        let a = alloc_arm(3000, 1024);
        let (start, end) = a.accessible_span().unwrap();
        assert_eq!(start, a.breaks.memory_start.as_usize());
        assert_eq!(end, a.breaks.app_break.as_usize());
        assert!(end - start > 3000, "accessible strictly exceeds request");
        assert_eq!(
            a.breaks.memory_size,
            (end - start) + 1024,
            "grant reservation directly after the span"
        );
    }

    #[test]
    fn grant_allocation_is_pointer_move_only() {
        let mut a = alloc_arm(3000, 1024);
        let regions_before = a.regions.clone();
        let kb_before = a.breaks.kernel_break;
        let ptr = a.allocate_grant(256).unwrap();
        assert!(ptr.as_usize() < kb_before.as_usize());
        assert!(ptr.as_usize() >= kb_before.as_usize() - 256 - 8);
        // The MPU regions did not change.
        for i in 0..8 {
            assert_eq!(
                a.regions.get(i).accessible_range(),
                regions_before.get(i).accessible_range()
            );
        }
        assert_eq!(tt_contracts::violation_count(), 0);
    }

    #[test]
    fn every_mutation_moves_the_generation_forward() {
        let mut a = alloc_arm(3000, 1024);
        let g0 = a.generation();
        a.allocate_grant(64).unwrap();
        let g1 = a.generation();
        assert!(g1 > g0, "grant allocation must bump the generation");
        let brk = PtrU8::new(a.breaks.memory_start.as_usize() + 1024);
        a.update_app_memory(brk).unwrap();
        let g2 = a.generation();
        assert!(g2 > g1, "brk must bump the generation");
        // A second allocator with the same layout never shares a number.
        let b = alloc_arm(3000, 1024);
        assert!(b.generation() > g2);
    }

    #[test]
    fn failed_mutations_leave_the_generation_alone() {
        let mut a = alloc_arm(3000, 1024);
        let g0 = a.generation();
        assert!(a.update_app_memory(PtrU8::new(0)).is_err());
        assert!(a.allocate_grant(usize::MAX / 2).is_err());
        assert_eq!(a.generation(), g0);
    }

    #[test]
    fn grant_exhaustion_is_detected() {
        let mut a = alloc_arm(3000, 512);
        // Eat the whole reservation.
        let mut allocated = 0usize;
        while a.allocate_grant(64).is_ok() {
            allocated += 64;
            assert!(allocated <= 1024, "grant grew past its reservation");
        }
        let err = a.allocate_grant(64).unwrap_err();
        assert_eq!(err, UpdateError::OutOfGrantMemory);
        // Invariants still hold after exhaustion.
        a.check_invariants();
    }

    #[test]
    fn brk_grow_rejected_when_no_room() {
        let mut a = alloc_arm(3000, 1024);
        // The app break already covers the whole accessible span; growing
        // past kernel_break must fail with validation, not wrap.
        let kb = a.breaks.kernel_break;
        assert_eq!(
            a.update_app_memory(kb),
            Err(UpdateError::InvalidBreak),
            "break at kernel_break is outside the legal window"
        );
        assert_eq!(
            a.update_app_memory(PtrU8::new(usize::MAX / 2)),
            Err(UpdateError::InvalidBreak)
        );
        assert_eq!(
            a.update_app_memory(PtrU8::new(0)),
            Err(UpdateError::InvalidBreak)
        );
        assert_eq!(tt_contracts::violation_count(), 0);
    }

    #[test]
    fn brk_shrink_and_regrow() {
        let mut a = alloc_arm(3000, 1024);
        let span_end = a.accessible_span().unwrap().1;
        let shrunk = PtrU8::new(a.breaks.memory_start.as_usize() + 1024);
        a.update_app_memory(shrunk).unwrap();
        assert_eq!(a.breaks.app_break, shrunk);
        let new_span_end = a.accessible_span().unwrap().1;
        assert!(new_span_end <= span_end);
        assert!(new_span_end >= shrunk.as_usize());
        // Regrow to near the grant region.
        let regrow = PtrU8::new(a.breaks.kernel_break.as_usize() - 8);
        a.update_app_memory(regrow).unwrap();
        assert_eq!(a.breaks.app_break, regrow);
        assert_eq!(tt_contracts::violation_count(), 0);
    }

    #[test]
    fn brk_cannot_reach_grant_after_grant_allocation() {
        let mut a = alloc_arm(3000, 1024);
        a.allocate_grant(512).unwrap();
        let kb = a.breaks.kernel_break.as_usize();
        // Growing to one byte below the (lowered) kernel break still works…
        // (if the hardware can cover it)
        let res = a.update_app_memory(PtrU8::new(kb - 8));
        if res.is_ok() {
            let (_, end) = a.accessible_span().unwrap();
            assert!(end <= kb, "MPU span may never reach the grant region");
        }
        // …but to the break itself never does.
        assert_eq!(
            a.update_app_memory(PtrU8::new(kb)),
            Err(UpdateError::InvalidBreak)
        );
        a.check_invariants();
    }

    #[test]
    fn hardware_agrees_with_logical_view_end_to_end() {
        let mpu = GranularCortexM::with_fresh_hardware();
        let mut a = alloc_arm(3000, 1024);
        a.allocate_grant(128).unwrap();
        a.configure_mpu(&mpu);
        let hw = mpu.hardware();
        let hw = hw.borrow();
        let (span_start, span_end) = a.accessible_span().unwrap();
        // Accessible span: user RW.
        assert!(hw
            .check(span_start, 4, AccessType::Write, Privilege::Unprivileged)
            .allowed());
        assert!(hw
            .check(span_end - 4, 4, AccessType::Write, Privilege::Unprivileged)
            .allowed());
        // Grant region: denied.
        for addr in [a.breaks.kernel_break.as_usize(), a.breaks.memory_end() - 4] {
            assert!(!hw
                .check(addr, 1, AccessType::Write, Privilege::Unprivileged)
                .allowed());
            assert!(!hw
                .check(addr, 1, AccessType::Read, Privilege::Unprivileged)
                .allowed());
        }
        // Flash: RX but not W.
        assert!(hw
            .check(FLASH, 4, AccessType::Execute, Privilege::Unprivileged)
            .allowed());
        assert!(!hw
            .check(FLASH, 4, AccessType::Write, Privilege::Unprivileged)
            .allowed());
        // Outside everything: denied.
        assert!(!hw
            .check(RAM + 0x3_0000, 1, AccessType::Read, Privilege::Unprivileged)
            .allowed());
    }

    #[test]
    fn works_generically_on_pmp() {
        let a = AppMemoryAllocator::<GranularPmpE310>::allocate_app_memory(
            PtrU8::new(0x8000_0000),
            0x4000,
            0,
            2048,
            512,
            PtrU8::new(0x2000_0000),
            0x1000,
        )
        .unwrap();
        assert!(a.can_access_flash());
        assert!(a.can_access_ram());
        assert!(a.cannot_access_other());
        let (start, end) = a.accessible_span().unwrap();
        assert_eq!(start, 0x8000_0000);
        assert!(end - start > 2048);
        assert!(end - start <= 2056, "PMP slack is tight");
    }

    #[test]
    fn reclaim_grants_raises_kernel_break_to_block_end() {
        let mut a = alloc_arm(3000, 1024);
        a.allocate_grant(256).unwrap();
        a.allocate_grant(64).unwrap();
        let g_before = a.generation();
        assert!(a.breaks.kernel_break.as_usize() < a.breaks.memory_end());
        a.reclaim_grants().unwrap();
        assert_eq!(a.breaks.kernel_break.as_usize(), a.breaks.memory_end());
        assert!(a.generation() > g_before);
        // Reclaimed space is allocatable again.
        a.allocate_grant(256).unwrap();
        assert_eq!(tt_contracts::violation_count(), 0);
    }

    #[test]
    fn rederive_rebuilds_the_ram_pair_and_keeps_invariants() {
        let mut a = alloc_arm(3000, 1024);
        let span_before = a.accessible_span().unwrap();
        let g_before = a.generation();
        // Scrub the staged RAM regions to simulate suspect state, then
        // re-derive from the breaks.
        a.regions
            .set(RAM_REGION_0, RegionDescriptor::unset(RAM_REGION_0));
        a.regions.set(
            MAX_RAM_REGION_NUMBER,
            RegionDescriptor::unset(MAX_RAM_REGION_NUMBER),
        );
        a.rederive_regions().unwrap();
        let span_after = a.accessible_span().unwrap();
        assert_eq!(span_after.0, span_before.0);
        assert!(span_after.1 >= a.breaks.app_break.as_usize());
        assert!(span_after.1 <= a.breaks.kernel_break.as_usize());
        assert!(a.generation() > g_before);
        assert_eq!(tt_contracts::violation_count(), 0);
    }

    #[test]
    fn reclaim_then_rederive_works_on_pmp_too() {
        let mut a = AppMemoryAllocator::<GranularPmpE310>::allocate_app_memory(
            PtrU8::new(0x8000_0000),
            0x4000,
            0,
            2048,
            512,
            PtrU8::new(0x2000_0000),
            0x1000,
        )
        .unwrap();
        a.allocate_grant(128).unwrap();
        a.reclaim_grants().unwrap();
        a.rederive_regions().unwrap();
        assert_eq!(a.breaks.kernel_break.as_usize(), a.breaks.memory_end());
        assert_eq!(tt_contracts::violation_count(), 0);
    }

    #[test]
    fn buffer_validation_uses_logical_bounds() {
        let a = alloc_arm(3000, 1024);
        let ms = a.breaks.memory_start.as_usize();
        let ab = a.breaks.app_break.as_usize();
        assert!(a.buffer_in_app_memory(PtrU8::new(ms), 16));
        assert!(a.buffer_in_app_memory(PtrU8::new(ab - 16), 16));
        assert!(!a.buffer_in_app_memory(PtrU8::new(ab - 8), 16)); // Straddles.
        assert!(!a.buffer_in_app_memory(PtrU8::new(ms - 4), 8)); // Below.
        assert!(!a.buffer_in_app_memory(PtrU8::new(a.breaks.kernel_break.as_usize()), 8));
        assert!(!a.buffer_in_app_memory(PtrU8::new(usize::MAX - 4), 8)); // Overflow.
    }

    #[test]
    fn zero_sizes_rejected() {
        assert_eq!(
            AppMemoryAllocator::<GranularCortexM>::allocate_app_memory(
                PtrU8::new(RAM),
                0x2_0000,
                0,
                0,
                1024,
                PtrU8::new(FLASH),
                0x1000,
            )
            .unwrap_err(),
            AllocateAppMemoryError::HeapError
        );
    }

    #[test]
    fn pool_exhaustion_reports_out_of_memory() {
        let err = AppMemoryAllocator::<GranularCortexM>::allocate_app_memory(
            PtrU8::new(RAM),
            4000, // Accessible span (3072) fits, but + 1024 grant does not.
            0,
            3000,
            1024,
            PtrU8::new(FLASH),
            0x1000,
        )
        .unwrap_err();
        assert_eq!(err, AllocateAppMemoryError::OutOfMemory);
    }

    #[test]
    fn bad_flash_reports_flash_error() {
        let err = AppMemoryAllocator::<GranularCortexM>::allocate_app_memory(
            PtrU8::new(RAM),
            0x2_0000,
            0,
            3000,
            1024,
            PtrU8::new(FLASH + 0x10), // Misaligned.
            0x1000,
        )
        .unwrap_err();
        assert_eq!(err, AllocateAppMemoryError::FlashError);
    }
}
