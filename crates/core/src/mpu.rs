//! TickTock's granular MPU abstraction (paper Fig. 3b).
//!
//! The methods here "are oblivious to application process layout, and
//! instead deal exclusively with configuring hardware or creating regions
//! with the hardware's restrictions in mind" (§3.5). The process allocator
//! in [`crate::allocator`] is generic over this trait, so the same
//! (verified once) kernel code runs on Cortex-M and all three PMP chips.

use crate::region::{OptPair, RegionDescriptor};
use tt_hw::{Permissions, PtrU8};

/// The granular MPU interface.
pub trait Mpu {
    /// The hardware's region representation.
    type Region: RegionDescriptor;

    /// Creates up to two contiguous regions inside the available memory
    /// block, jointly spanning **at least** `total_size` bytes while
    /// satisfying the hardware's size/alignment constraints.
    ///
    /// `max_region_id` is the highest hardware slot reserved for the
    /// process RAM (the pair uses `max_region_id - 1` and `max_region_id`).
    fn new_regions(
        max_region_id: usize,
        unalloc_start: PtrU8,
        unalloc_size: usize,
        total_size: usize,
        permissions: Permissions,
    ) -> OptPair<Self::Region>;

    /// Rebuilds the RAM regions for a new total size starting at
    /// `region_start`, bounded by `available_size` (the bytes up to the
    /// grant region). Used by `brk`/`sbrk`.
    fn update_regions(
        max_region_id: usize,
        region_start: PtrU8,
        available_size: usize,
        total_size: usize,
        permissions: Permissions,
    ) -> OptPair<Self::Region>;

    /// Creates one region covering **exactly** `[start, start + size)`, or
    /// `None` if the hardware cannot express that range precisely (used for
    /// the flash/code region, whose placement is fixed at load time).
    fn create_exact_region(
        region_id: usize,
        start: PtrU8,
        size: usize,
        permissions: Permissions,
    ) -> Option<Self::Region>;

    /// Writes the configuration into the hardware, in slot order, and
    /// enables the MPU for unprivileged execution.
    fn configure_mpu(&self, regions: &[Self::Region]);

    /// Disables memory protection (kernel execution, §2.1).
    fn disable_mpu(&self);

    /// Re-arms protection without rewriting any region registers — the
    /// commit-cache hit path. On Cortex-M this is the single `MPU_CTRL`
    /// write undoing [`Mpu::disable_mpu`]; on PMP chips (where the kernel
    /// runs in M-mode and never disables the unit) it is a no-op.
    fn reenable_mpu(&self) {}

    /// Reads back the live hardware registers and reports whether they
    /// still hold exactly what [`Mpu::configure_mpu`] would commit for
    /// `regions` — the commit-cache soundness obligation. Must charge no
    /// cycles and record no trace events. The default is `true` for
    /// test doubles with no hardware behind them.
    fn hardware_matches(&self, _regions: &[Self::Region]) -> bool {
        true
    }
}

/// Computes the combined accessible span of a region pair: the pair is
/// contiguous by construction, so the span is `fst.start .. snd.end` (or
/// `fst.end` when the second region is unset).
pub fn pair_span<R: RegionDescriptor>(fst: &R, snd: &R) -> Option<(usize, usize)> {
    let (start, fst_end) = fst.accessible_range()?;
    match snd.accessible_range() {
        Some((snd_start, snd_end)) => {
            // Contiguity is a postcondition of new_regions/update_regions.
            tt_contracts::ensures!("pair_span", snd_start == fst_end);
            Some((start, snd_end))
        }
        None => Some((start, fst_end)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tt_contracts::{take_violations, with_mode, Mode};

    #[derive(Debug, Clone)]
    struct R(usize, Option<(usize, usize)>);
    impl RegionDescriptor for R {
        fn unset(id: usize) -> Self {
            R(id, None)
        }
        fn start(&self) -> Option<PtrU8> {
            self.1.map(|(s, _)| PtrU8::new(s))
        }
        fn size(&self) -> Option<usize> {
            self.1.map(|(s, e)| e - s)
        }
        fn is_set(&self) -> bool {
            self.1.is_some()
        }
        fn matches_permissions(&self, _: Permissions) -> bool {
            self.is_set()
        }
        fn overlaps(&self, lo: usize, hi: usize) -> bool {
            self.1.is_some_and(|(s, e)| s < hi && lo < e)
        }
        fn region_id(&self) -> usize {
            self.0
        }
    }

    #[test]
    fn pair_span_joins_contiguous_regions() {
        let fst = R(0, Some((0x1000, 0x1800)));
        let snd = R(1, Some((0x1800, 0x1A00)));
        assert_eq!(pair_span(&fst, &snd), Some((0x1000, 0x1A00)));
    }

    #[test]
    fn pair_span_with_unset_second() {
        let fst = R(0, Some((0x1000, 0x1800)));
        let snd = R(1, None);
        assert_eq!(pair_span(&fst, &snd), Some((0x1000, 0x1800)));
    }

    #[test]
    fn pair_span_unset_first_is_none() {
        assert_eq!(pair_span(&R(0, None), &R(1, None)), None);
    }

    #[test]
    fn non_contiguous_pair_violates_contract() {
        with_mode(Mode::Observe, || {
            let fst = R(0, Some((0x1000, 0x1800)));
            let snd = R(1, Some((0x2000, 0x2200))); // Gap!
            let _ = pair_span(&fst, &snd);
        });
        assert_eq!(take_violations().len(), 1);
    }
}
