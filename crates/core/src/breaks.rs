//! The kernel's logical view of process memory: `AppBreaks` (paper Fig. 6,
//! §4.2).
//!
//! Every pointer relationship of Tock's memory-layout policy (Fig. 2) is an
//! invariant checked at construction and at every mutation:
//!
//! * `kernel_break <= memory_start + memory_size` — the grant region stays
//!   inside the process memory block;
//! * `memory_start <= app_break` — the process break never precedes the
//!   block;
//! * `app_break < kernel_break` — process RAM and grant memory never
//!   overlap (the §3.4 bug, excluded by type).

use tt_contracts::invariant;
use tt_hw::{AddrRange, PtrU8};

/// Per-process memory layout pointers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AppBreaks {
    /// Start of the process memory block in RAM.
    pub memory_start: PtrU8,
    /// Total size of the block (process RAM + grant region).
    pub memory_size: usize,
    /// End (exclusive) of process-accessible RAM: stack, data, heap.
    pub app_break: PtrU8,
    /// Start (lowest address) of the kernel-owned grant region.
    pub kernel_break: PtrU8,
    /// Start of the process code in flash.
    pub flash_start: PtrU8,
    /// Size of the process code region.
    pub flash_size: usize,
}

/// Error from break updates that would violate the layout policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakError {
    /// The requested break precedes the start of process memory.
    BelowMemoryStart,
    /// The requested break collides with the grant region.
    OverlapsGrant,
    /// The grant region would grow below the app break.
    GrantBelowAppBreak,
    /// The grant region would leave the process memory block.
    GrantOutOfBlock,
}

impl AppBreaks {
    /// Checks the Fig. 6 invariants; called at every creation and update.
    fn check(&self) {
        invariant!(
            "AppBreaks",
            self.kernel_break.as_usize() <= self.memory_start.as_usize() + self.memory_size
        );
        invariant!(
            "AppBreaks",
            self.memory_start.as_usize() <= self.app_break.as_usize()
        );
        invariant!(
            "AppBreaks",
            self.app_break.as_usize() < self.kernel_break.as_usize()
        );
    }

    /// Creates a layout, checking the invariants.
    pub fn new(
        memory_start: PtrU8,
        memory_size: usize,
        app_break: PtrU8,
        kernel_break: PtrU8,
        flash_start: PtrU8,
        flash_size: usize,
    ) -> Self {
        let b = Self {
            memory_start,
            memory_size,
            app_break,
            kernel_break,
            flash_start,
            flash_size,
        };
        b.check();
        b
    }

    /// End (exclusive) of the process memory block.
    pub fn memory_end(&self) -> usize {
        self.memory_start.as_usize() + self.memory_size
    }

    /// The process RAM range the MPU must allow.
    pub fn ram_range(&self) -> AddrRange {
        AddrRange::new(self.memory_start.as_usize(), self.app_break.as_usize())
    }

    /// The grant range the MPU must deny.
    pub fn grant_range(&self) -> AddrRange {
        AddrRange::new(self.kernel_break.as_usize(), self.memory_end())
    }

    /// The flash range the MPU must allow read-execute.
    pub fn flash_range(&self) -> AddrRange {
        AddrRange::from_start_size(self.flash_start, self.flash_size)
    }

    /// Bytes remaining between the app break and the grant region.
    pub fn free_gap(&self) -> usize {
        self.kernel_break.as_usize() - self.app_break.as_usize()
    }

    /// Moves the app break (the `brk` syscall), validating against the
    /// policy *before* mutating — the validation whose absence was BUG3.
    pub fn set_app_break(&mut self, new_break: PtrU8) -> Result<(), BreakError> {
        if new_break.as_usize() < self.memory_start.as_usize() {
            return Err(BreakError::BelowMemoryStart);
        }
        if new_break.as_usize() >= self.kernel_break.as_usize() {
            return Err(BreakError::OverlapsGrant);
        }
        self.app_break = new_break;
        self.check();
        Ok(())
    }

    /// Moves the kernel break down (grant allocation grows the grant region
    /// toward the app break).
    pub fn set_kernel_break(&mut self, new_break: PtrU8) -> Result<(), BreakError> {
        if new_break.as_usize() <= self.app_break.as_usize() {
            return Err(BreakError::GrantBelowAppBreak);
        }
        if new_break.as_usize() > self.memory_end() {
            return Err(BreakError::GrantOutOfBlock);
        }
        self.kernel_break = new_break;
        self.check();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tt_contracts::{take_violations, with_mode, Mode};

    fn breaks() -> AppBreaks {
        AppBreaks::new(
            PtrU8::new(0x2000_0000),
            8192,
            PtrU8::new(0x2000_1000),
            PtrU8::new(0x2000_1800),
            PtrU8::new(0x0004_0000),
            4096,
        )
    }

    #[test]
    fn valid_layout_constructs() {
        let b = breaks();
        assert_eq!(b.memory_end(), 0x2000_2000);
        assert_eq!(b.free_gap(), 0x800);
        assert_eq!(b.ram_range(), AddrRange::new(0x2000_0000, 0x2000_1000));
        assert_eq!(b.grant_range(), AddrRange::new(0x2000_1800, 0x2000_2000));
        assert_eq!(b.flash_range(), AddrRange::new(0x0004_0000, 0x0004_1000));
    }

    #[test]
    fn app_break_overlapping_grant_violates_invariant() {
        with_mode(Mode::Observe, || {
            let _ = AppBreaks::new(
                PtrU8::new(0x2000_0000),
                8192,
                PtrU8::new(0x2000_1900), // Past kernel_break.
                PtrU8::new(0x2000_1800),
                PtrU8::new(0x0004_0000),
                4096,
            );
        });
        assert!(!take_violations().is_empty());
    }

    #[test]
    fn kernel_break_outside_block_violates_invariant() {
        with_mode(Mode::Observe, || {
            let _ = AppBreaks::new(
                PtrU8::new(0x2000_0000),
                4096,
                PtrU8::new(0x2000_0800),
                PtrU8::new(0x2000_2000), // Past memory_end (0x2000_1000).
                PtrU8::new(0x0004_0000),
                4096,
            );
        });
        assert!(!take_violations().is_empty());
    }

    #[test]
    fn brk_updates_validate_against_policy() {
        let mut b = breaks();
        assert_eq!(
            b.set_app_break(PtrU8::new(0x1FFF_0000)),
            Err(BreakError::BelowMemoryStart)
        );
        assert_eq!(
            b.set_app_break(PtrU8::new(0x2000_1800)),
            Err(BreakError::OverlapsGrant)
        );
        b.set_app_break(PtrU8::new(0x2000_17FC)).unwrap();
        assert_eq!(b.app_break.as_usize(), 0x2000_17FC);
        assert_eq!(tt_contracts::violation_count(), 0);
    }

    #[test]
    fn grant_growth_validates_against_policy() {
        let mut b = breaks();
        assert_eq!(
            b.set_kernel_break(PtrU8::new(0x2000_1000)),
            Err(BreakError::GrantBelowAppBreak)
        );
        assert_eq!(
            b.set_kernel_break(PtrU8::new(0x2000_2004)),
            Err(BreakError::GrantOutOfBlock)
        );
        b.set_kernel_break(PtrU8::new(0x2000_1400)).unwrap();
        assert_eq!(b.free_gap(), 0x400);
    }

    #[test]
    fn grant_can_shrink_back_to_block_end() {
        let mut b = breaks();
        b.set_kernel_break(PtrU8::new(0x2000_2000)).unwrap();
        assert_eq!(b.grant_range().len(), 0);
    }

    #[test]
    fn brk_to_exact_start_is_allowed() {
        let mut b = breaks();
        b.set_app_break(PtrU8::new(0x2000_0000)).unwrap();
        assert_eq!(b.ram_range().len(), 0);
    }
}
