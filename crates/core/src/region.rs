//! The `RegionDescriptor` abstraction (paper Fig. 5 and §4.1).
//!
//! A `RegionDescriptor` "abstractly characterizes the properties of a
//! single MPU-enforced hardware region while hiding the hardware details
//! entirely". The paper attaches *associated refinements* (`start`, `size`,
//! `is_set`, `matches`, `overlaps`) that each driver must define against
//! its register encoding; here those refinements are trait methods whose
//! driver implementations decode the same hardware bits, and the `final`
//! refinement [`RegionDescriptor::can_access`] is a provided method defined
//! in terms of the others, exactly as in the paper.

use tt_hw::{Permissions, PtrU8};

/// An abstract hardware-enforced memory region.
pub trait RegionDescriptor: Clone {
    /// Creates the "unset" region for slot `region_id` (no memory matched).
    fn unset(region_id: usize) -> Self;

    /// The accessible start address, if the region is set.
    ///
    /// For Cortex-M this is the subregion-aware accessible start; for PMP
    /// it is the region start (the PMP is "far more flexible", §3.5).
    fn start(&self) -> Option<PtrU8>;

    /// The accessible size in bytes, if the region is set.
    fn size(&self) -> Option<usize>;

    /// Whether the region is enabled in hardware.
    fn is_set(&self) -> bool;

    /// Whether the region grants exactly the given logical permissions.
    fn matches_permissions(&self, perms: Permissions) -> bool;

    /// Whether the region's accessible bytes intersect `[lo, hi)`.
    fn overlaps(&self, lo: usize, hi: usize) -> bool;

    /// The region's hardware slot number.
    fn region_id(&self) -> usize;

    /// The paper's `#[final]` associated refinement: the region is set,
    /// covers exactly `[start, end)`, and carries `perms`.
    fn can_access(&self, start: usize, end: usize, perms: Permissions) -> bool {
        self.is_set()
            && self.start().map(PtrU8::as_usize) == Some(start)
            && self
                .size()
                .is_some_and(|sz| start.checked_add(sz) == Some(end))
            && self.matches_permissions(perms)
    }

    /// The accessible range `[start, start + size)`, if set.
    fn accessible_range(&self) -> Option<(usize, usize)> {
        match (self.start(), self.size()) {
            (Some(s), Some(sz)) => Some((s.as_usize(), s.as_usize() + sz)),
            _ => None,
        }
    }
}

/// A pair of regions returned by the granular MPU's allocation methods
/// (the paper's `OptPair<Region, Region>` content).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pair<T> {
    /// First (lower) region.
    pub fst: T,
    /// Second (higher) region; may be unset when one region suffices.
    pub snd: T,
}

/// `OptPair` from Fig. 3b: either both regions or nothing.
pub type OptPair<T> = Option<Pair<T>>;

/// A fixed array of eight region descriptors: the kernel's staged MPU
/// configuration (the paper's `RArray<R>`).
#[derive(Debug, Clone)]
pub struct RArray<R: RegionDescriptor> {
    regions: [R; 8],
}

impl<R: RegionDescriptor> RArray<R> {
    /// Creates an array of unset regions, one per hardware slot.
    pub fn new_unset() -> Self {
        Self {
            regions: std::array::from_fn(R::unset),
        }
    }

    /// Returns the region in slot `i`.
    pub fn get(&self, i: usize) -> &R {
        &self.regions[i]
    }

    /// Replaces the region in slot `i`.
    ///
    /// # Panics
    ///
    /// Panics if the descriptor's own `region_id` disagrees with `i`: a
    /// region written to the wrong slot is exactly the write-order/identity
    /// confusion the §6.1 differential testing caught.
    pub fn set(&mut self, i: usize, region: R) {
        assert_eq!(
            region.region_id(),
            i,
            "region id/slot mismatch: descriptor {} into slot {i}",
            region.region_id()
        );
        self.regions[i] = region;
        self.check_invariants();
    }

    /// The `RArray` well-formedness invariant: every slot holds the
    /// descriptor whose `region_id` names that slot. `set` rejects a
    /// mismatched write up front; this re-checks the whole array after
    /// every mutation (and is what the `tt-audit` coverage lint requires
    /// of all public mutators here).
    pub fn check_invariants(&self) {
        for (i, r) in self.regions.iter().enumerate() {
            tt_contracts::invariant!("RArray", r.region_id() == i);
        }
    }

    /// Iterates over all eight slots in slot order.
    pub fn iter(&self) -> impl Iterator<Item = &R> {
        self.regions.iter()
    }

    /// The raw slice, slot-ordered (what `configure_mpu` consumes).
    pub fn as_slice(&self) -> &[R] {
        &self.regions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A minimal in-memory RegionDescriptor for exercising the provided
    /// methods independent of any hardware encoding.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct FakeRegion {
        pub id: usize,
        pub range: Option<(usize, usize)>,
        pub perms: Permissions,
    }

    impl RegionDescriptor for FakeRegion {
        fn unset(region_id: usize) -> Self {
            Self {
                id: region_id,
                range: None,
                perms: Permissions::ReadOnly,
            }
        }
        fn start(&self) -> Option<PtrU8> {
            self.range.map(|(s, _)| PtrU8::new(s))
        }
        fn size(&self) -> Option<usize> {
            self.range.map(|(s, e)| e - s)
        }
        fn is_set(&self) -> bool {
            self.range.is_some()
        }
        fn matches_permissions(&self, perms: Permissions) -> bool {
            self.is_set() && self.perms == perms
        }
        fn overlaps(&self, lo: usize, hi: usize) -> bool {
            self.range.is_some_and(|(s, e)| lo < hi && s < hi && lo < e)
        }
        fn region_id(&self) -> usize {
            self.id
        }
    }

    #[test]
    fn can_access_requires_exact_range_and_perms() {
        let r = FakeRegion {
            id: 0,
            range: Some((0x1000, 0x2000)),
            perms: Permissions::ReadWriteOnly,
        };
        assert!(r.can_access(0x1000, 0x2000, Permissions::ReadWriteOnly));
        assert!(!r.can_access(0x1000, 0x1800, Permissions::ReadWriteOnly));
        assert!(!r.can_access(0x0800, 0x2000, Permissions::ReadWriteOnly));
        assert!(!r.can_access(0x1000, 0x2000, Permissions::ReadOnly));
    }

    #[test]
    fn unset_region_can_access_nothing() {
        let r = FakeRegion::unset(3);
        assert!(!r.can_access(0, 0x1000, Permissions::ReadOnly));
        assert!(!r.is_set());
        assert_eq!(r.accessible_range(), None);
        assert_eq!(r.region_id(), 3);
    }

    #[test]
    fn rarray_slots_get_distinct_ids() {
        let arr: RArray<FakeRegion> = RArray::new_unset();
        for (i, r) in arr.iter().enumerate() {
            assert_eq!(r.region_id(), i);
        }
        assert_eq!(arr.as_slice().len(), 8);
    }

    #[test]
    fn rarray_set_accepts_matching_slot() {
        let mut arr: RArray<FakeRegion> = RArray::new_unset();
        let r = FakeRegion {
            id: 2,
            range: Some((0, 32)),
            perms: Permissions::ReadOnly,
        };
        arr.set(2, r.clone());
        assert_eq!(arr.get(2), &r);
    }

    #[test]
    #[should_panic(expected = "region id/slot mismatch")]
    fn rarray_set_rejects_wrong_slot() {
        let mut arr: RArray<FakeRegion> = RArray::new_unset();
        let r = FakeRegion {
            id: 5,
            range: Some((0, 32)),
            perms: Permissions::ReadOnly,
        };
        arr.set(1, r);
    }

    #[test]
    fn accessible_range_composes_start_and_size() {
        let r = FakeRegion {
            id: 0,
            range: Some((0x400, 0x480)),
            perms: Permissions::ReadOnly,
        };
        assert_eq!(r.accessible_range(), Some((0x400, 0x480)));
        assert_eq!(r.size(), Some(0x80));
    }
}
