//! Property suites on the granular abstraction's core laws (DESIGN.md INV
//! row): the driver-level RegionDescriptor contracts of §4.1/§4.4 and the
//! allocator invariants of §4.2/§4.3, over randomized inputs.

use proptest::prelude::*;
use ticktock::allocator::AppMemoryAllocator;
use ticktock::cortexm::{CortexMRegion, GranularCortexM};
use ticktock::mpu::{pair_span, Mpu};
use ticktock::region::RegionDescriptor;
use ticktock::riscv::{GranularPmpE310, GranularPmpIbex};
use tt_hw::{Permissions, PtrU8};

const RAM: usize = 0x2000_0000;
const FLASH: usize = 0x0004_0000;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// CortexMRegion: what `new` encodes, the descriptor decodes — the
    /// §4.4 register-bit correspondence, for every legal geometry.
    #[test]
    fn cortexm_region_encode_decode_roundtrip(
        exp in 8u32..18,
        base_mult in 0usize..32,
        k in 1usize..9,
        perms in prop::sample::select(Permissions::ALL.to_vec()),
    ) {
        let size = 1usize << exp;
        let base = RAM + base_mult * size;
        let r = CortexMRegion::new(0, base, size, k, perms);
        prop_assert!(r.is_set());
        prop_assert_eq!(r.start().map(PtrU8::as_usize), Some(base));
        prop_assert_eq!(r.size(), Some(k * (size / 8)));
        prop_assert!(r.matches_permissions(perms));
        // Permissions are exact: no other logical permission matches,
        // except encodings that genuinely alias in hardware (RX vs X-only).
        for other in Permissions::ALL {
            if other == perms {
                continue;
            }
            let alias = matches!(
                (perms, other),
                (Permissions::ReadExecuteOnly, Permissions::ExecuteOnly)
                    | (Permissions::ExecuteOnly, Permissions::ReadExecuteOnly)
            );
            prop_assert_eq!(r.matches_permissions(other), alias, "{:?} vs {:?}", perms, other);
        }
        // Overlap agrees with the accessible range.
        let (s, e) = r.accessible_range().unwrap();
        prop_assert!(r.overlaps(s, s + 1));
        prop_assert!(!r.overlaps(e, usize::MAX));
        prop_assert!(!r.overlaps(0, s));
    }

    /// new_regions: span strictly exceeds the request, starts aligned
    /// within the pool, and the pair is contiguous.
    #[test]
    fn cortexm_new_regions_postconditions(
        start_off in 0usize..1024,
        pool in 0x8000usize..0x4_0000,
        total in 32usize..12000,
    ) {
        let start = RAM + start_off * 4;
        let Some(pair) = GranularCortexM::new_regions(
            1,
            PtrU8::new(start),
            pool,
            total,
            Permissions::ReadWriteOnly,
        ) else {
            return Ok(()); // Refusal is always acceptable.
        };
        let (lo, hi) = pair_span(&pair.fst, &pair.snd).unwrap();
        prop_assert!(lo >= start);
        prop_assert!(hi - lo > total, "span {} for total {}", hi - lo, total);
        prop_assert!(hi <= start + pool);
        if pair.snd.is_set() {
            let (_, fst_end) = pair.fst.accessible_range().unwrap();
            let (snd_start, _) = pair.snd.accessible_range().unwrap();
            prop_assert_eq!(fst_end, snd_start, "pair must be contiguous");
        }
        prop_assert_eq!(pair.fst.region_id(), 0);
        prop_assert_eq!(pair.snd.region_id(), 1);
    }

    /// update_regions: result covers the request and never exceeds the
    /// available window (the no-grant-exposure precondition).
    #[test]
    fn cortexm_update_regions_bounded(
        available_q in 1usize..64,
        total_frac in 1usize..100,
    ) {
        let available = available_q * 256;
        let total = (available * total_frac / 100).max(1);
        let Some(pair) = GranularCortexM::update_regions(
            1,
            PtrU8::new(RAM),
            available,
            total,
            Permissions::ReadWriteOnly,
        ) else {
            return Ok(());
        };
        let (lo, hi) = pair_span(&pair.fst, &pair.snd).unwrap();
        prop_assert_eq!(lo, RAM);
        prop_assert!(hi - lo >= total);
        prop_assert!(hi - lo <= available, "span {} > available {}", hi - lo, available);
    }

    /// The PMP drivers obey the same laws with granularity-rounded bounds.
    #[test]
    fn pmp_new_regions_postconditions(
        start_off in 0usize..4096,
        total in 8usize..8000,
    ) {
        let e310 = GranularPmpE310::new_regions(
            1,
            PtrU8::new(0x8000_0000 + start_off),
            0x4000,
            total,
            Permissions::ReadWriteOnly,
        );
        if let Some(pair) = e310 {
            let (lo, hi) = pair.fst.accessible_range().unwrap();
            prop_assert_eq!(lo % 4, 0);
            prop_assert!(hi - lo > total);
            prop_assert!(hi - lo <= total + 8, "E310 slack bounded by one granule");
        }
        let ibex = GranularPmpIbex::new_regions(
            1,
            PtrU8::new(0x1000_0000 + start_off),
            0x8000,
            total,
            Permissions::ReadWriteOnly,
        );
        if let Some(pair) = ibex {
            let (lo, hi) = pair.fst.accessible_range().unwrap();
            prop_assert_eq!(lo % 8, 0);
            prop_assert_eq!((hi - lo) % 8, 0);
            prop_assert!(hi - lo > total);
        }
    }

    /// Allocation-level disagreement is impossible by construction: the
    /// breaks equal what the regions decode to, always.
    #[test]
    fn allocator_breaks_equal_hardware_truth(
        start_off in 0usize..512,
        app in 64usize..6000,
        kernel in 16usize..2000,
    ) {
        let Ok(alloc) = AppMemoryAllocator::<GranularCortexM>::allocate_app_memory(
            PtrU8::new(RAM + start_off * 4),
            0x4_0000,
            0,
            app,
            kernel,
            PtrU8::new(FLASH),
            0x1000,
        ) else {
            return Ok(());
        };
        let (span_start, span_end) = alloc.accessible_span().unwrap();
        prop_assert_eq!(span_start, alloc.breaks.memory_start.as_usize());
        prop_assert_eq!(span_end, alloc.breaks.app_break.as_usize());
        prop_assert_eq!(
            alloc.breaks.memory_size,
            (span_end - span_start) + kernel
        );
        prop_assert!(alloc.can_access_flash());
        prop_assert!(alloc.can_access_ram());
        prop_assert!(alloc.cannot_access_other());
    }

    /// Grant allocation monotonically shrinks the gap and never crosses
    /// the hardware span.
    #[test]
    fn grants_never_cross_the_accessible_span(
        app in 256usize..4000,
        kernel in 128usize..2048,
        sizes in prop::collection::vec(1usize..300, 1..10),
    ) {
        let Ok(mut alloc) = AppMemoryAllocator::<GranularCortexM>::allocate_app_memory(
            PtrU8::new(RAM),
            0x4_0000,
            0,
            app,
            kernel,
            PtrU8::new(FLASH),
            0x1000,
        ) else {
            return Ok(());
        };
        let span_end = alloc.accessible_span().unwrap().1;
        let mut last_kb = alloc.breaks.kernel_break.as_usize();
        for size in sizes {
            match alloc.allocate_grant(size) {
                Ok(ptr) => {
                    prop_assert!(ptr.as_usize() < last_kb);
                    prop_assert!(ptr.as_usize() >= span_end);
                    last_kb = alloc.breaks.kernel_break.as_usize();
                    prop_assert_eq!(ptr.as_usize(), last_kb);
                }
                Err(_) => {
                    // Exhaustion must leave the invariants intact.
                    prop_assert!(alloc.cannot_access_other());
                }
            }
        }
    }
}
