//! Verification obligations: the unit of work the verifier discharges.
//!
//! In Flux, every function with a contract generates verification conditions
//! that the SMT solver must discharge. Here, each crate registers one
//! [`Obligation`] per contract into a [`Registry`]; the [`crate::verifier`]
//! then discharges them modularly, per function, with timing — reproducing
//! the methodology behind the paper's Figure 12.

use crate::ContractKind;
use std::fmt;

/// The outcome of discharging a single obligation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckResult {
    /// The contract held on every explored case.
    Verified {
        /// Number of concrete cases explored (exhaustive or sampled).
        cases: u64,
    },
    /// The contract failed; verification rejects the function.
    Refuted {
        /// A human-readable counterexample, like a Flux error message.
        counterexample: String,
    },
    /// The obligation is `#[trusted]`: assumed, not checked (§5).
    Trusted,
}

impl CheckResult {
    /// Returns `true` unless the obligation was refuted.
    pub fn passed(&self) -> bool {
        !matches!(self, CheckResult::Refuted { .. })
    }
}

/// A single verification obligation attached to a function or type.
pub struct Obligation {
    /// Component the obligation belongs to (groups rows of Fig. 10/12),
    /// e.g. `"kernel"`, `"arm-mpu"`, `"fluxarm"`.
    pub component: &'static str,
    /// Fully qualified name of the function or type under check.
    pub function: String,
    /// Which contract kind this obligation discharges.
    pub kind: ContractKind,
    /// Whether the obligation is `#[trusted]` (counted separately in Fig. 10).
    pub trusted: bool,
    /// The discharge procedure: our stand-in for the SMT query.
    pub check: Box<dyn Fn() -> CheckResult + Send>,
}

impl fmt::Debug for Obligation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Obligation")
            .field("component", &self.component)
            .field("function", &self.function)
            .field("kind", &self.kind)
            .field("trusted", &self.trusted)
            .finish_non_exhaustive()
    }
}

/// A collection of obligations registered by the workspace crates.
#[derive(Debug, Default)]
pub struct Registry {
    obligations: Vec<Obligation>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a fully specified obligation.
    pub fn add(&mut self, obligation: Obligation) {
        self.obligations.push(obligation);
    }

    /// Registers an obligation from its parts.
    pub fn add_fn(
        &mut self,
        component: &'static str,
        function: impl Into<String>,
        kind: ContractKind,
        check: impl Fn() -> CheckResult + Send + 'static,
    ) {
        self.add(Obligation {
            component,
            function: function.into(),
            kind,
            trusted: false,
            check: Box::new(check),
        });
    }

    /// Registers a `#[trusted]` obligation: counted, never executed.
    pub fn add_trusted(
        &mut self,
        component: &'static str,
        function: impl Into<String>,
        kind: ContractKind,
    ) {
        self.add(Obligation {
            component,
            function: function.into(),
            kind,
            trusted: true,
            check: Box::new(|| CheckResult::Trusted),
        });
    }

    /// Registers the implicit, cheap obligations for a batch of functions
    /// whose only verification conditions are Flux's built-in safety checks
    /// (overflow/bounds). These are the "0.05s mean" bulk of Figure 12.
    pub fn add_builtin_safety(&mut self, component: &'static str, functions: &[&str]) {
        for f in functions {
            let name = (*f).to_string();
            self.add_fn(component, name, ContractKind::Overflow, || {
                // A token domain walk standing in for the trivial VC solve.
                let mut acc: u64 = 0;
                for i in 0..64u64 {
                    acc = acc.wrapping_mul(31).wrapping_add(i);
                }
                std::hint::black_box(acc);
                CheckResult::Verified { cases: 64 }
            });
        }
    }

    /// Returns the registered obligations.
    pub fn obligations(&self) -> &[Obligation] {
        &self.obligations
    }

    /// Returns the number of distinct functions with obligations in
    /// `component` (an empty string matches all components).
    pub fn function_count(&self, component: &str) -> usize {
        let mut names: Vec<&str> = self
            .obligations
            .iter()
            .filter(|o| component.is_empty() || o.component == component)
            .map(|o| o.function.as_str())
            .collect();
        names.sort_unstable();
        names.dedup();
        names.len()
    }

    /// Returns the number of trusted functions in `component` (functions all
    /// of whose obligations are trusted), mirroring Fig. 10's `Fns(Trusted)`.
    pub fn trusted_function_count(&self, component: &str) -> usize {
        let mut names: Vec<&str> = self
            .obligations
            .iter()
            .filter(|o| (component.is_empty() || o.component == component) && o.trusted)
            .map(|o| o.function.as_str())
            .collect();
        names.sort_unstable();
        names.dedup();
        names
            .into_iter()
            .filter(|name| {
                self.obligations
                    .iter()
                    .filter(|o| o.function == *name)
                    .all(|o| o.trusted)
            })
            .count()
    }

    /// Lists the component names present in the registry, sorted.
    pub fn components(&self) -> Vec<&'static str> {
        let mut out: Vec<&'static str> = self.obligations.iter().map(|o| o.component).collect();
        out.sort_unstable();
        out.dedup();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_registry() -> Registry {
        let mut r = Registry::new();
        r.add_fn("kernel", "alloc", ContractKind::Post, || {
            CheckResult::Verified { cases: 10 }
        });
        r.add_fn("kernel", "alloc", ContractKind::Invariant, || {
            CheckResult::Verified { cases: 5 }
        });
        r.add_fn("kernel", "brk", ContractKind::Pre, || {
            CheckResult::Refuted {
                counterexample: "new_break = usize::MAX".into(),
            }
        });
        r.add_trusted("arm-mpu", "fmt_fault", ContractKind::Post);
        r
    }

    #[test]
    fn function_count_dedups_per_function() {
        let r = sample_registry();
        assert_eq!(r.function_count("kernel"), 2);
        assert_eq!(r.function_count("arm-mpu"), 1);
        assert_eq!(r.function_count(""), 3);
    }

    #[test]
    fn trusted_count_requires_all_obligations_trusted() {
        let r = sample_registry();
        assert_eq!(r.trusted_function_count("arm-mpu"), 1);
        assert_eq!(r.trusted_function_count("kernel"), 0);
    }

    #[test]
    fn components_listed_sorted() {
        let r = sample_registry();
        assert_eq!(r.components(), vec!["arm-mpu", "kernel"]);
    }

    #[test]
    fn builtin_safety_obligations_verify_quickly() {
        let mut r = Registry::new();
        r.add_builtin_safety("kernel", &["f1", "f2", "f3"]);
        assert_eq!(r.function_count("kernel"), 3);
        for o in r.obligations() {
            assert!(matches!((o.check)(), CheckResult::Verified { cases: 64 }));
        }
    }

    #[test]
    fn check_result_passed() {
        assert!(CheckResult::Verified { cases: 1 }.passed());
        assert!(CheckResult::Trusted.passed());
        assert!(!CheckResult::Refuted {
            counterexample: "x".into()
        }
        .passed());
    }
}
