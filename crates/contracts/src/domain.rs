//! Input-domain enumeration and sampling for obligation discharge.
//!
//! Flux hands each verification condition to an SMT solver, which searches
//! the whole input space symbolically. Our executable stand-in discharges an
//! obligation by *running* the contract over a domain: exhaustively when the
//! domain is small (arithmetic lemmas, register bit fields) and by stratified
//! sampling when it is not (allocator parameter spaces).
//!
//! The domains are deliberately adversarial: boundary values, power-of-two
//! neighbourhoods, and alignment-straddling addresses are always included,
//! because those are exactly the corners where the paper's bugs live.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Deterministic seed so verification runs (and their timings) reproduce.
pub const DEFAULT_SEED: u64 = 0x5005_2025_u64;

/// A deterministic sampler over `usize` values with adversarial corners.
#[derive(Debug)]
pub struct UsizeDomain {
    lo: usize,
    hi: usize,
    rng: StdRng,
}

impl UsizeDomain {
    /// Creates a domain over the inclusive range `[lo, hi]`.
    pub fn new(lo: usize, hi: usize) -> Self {
        assert!(lo <= hi, "empty domain");
        Self {
            lo,
            hi,
            rng: StdRng::seed_from_u64(DEFAULT_SEED),
        }
    }

    /// Returns the corner values every sample set must include: range ends,
    /// powers of two in range, and their off-by-one neighbours.
    pub fn corners(&self) -> Vec<usize> {
        let mut out = vec![self.lo, self.hi];
        let mut p: usize = 1;
        loop {
            for candidate in [p.wrapping_sub(1), p, p.wrapping_add(1)] {
                if candidate >= self.lo && candidate <= self.hi {
                    out.push(candidate);
                }
            }
            match p.checked_mul(2) {
                Some(next) if next / 2 <= self.hi => p = next,
                _ => break,
            }
            if p > self.hi {
                break;
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Draws `n` samples: all corners first, then uniform draws.
    pub fn samples(&mut self, n: usize) -> Vec<usize> {
        let mut out = self.corners();
        out.truncate(n);
        while out.len() < n {
            out.push(self.rng.gen_range(self.lo..=self.hi));
        }
        out
    }
}

/// An exhaustive product iterator over small per-argument domains.
///
/// Used where the paper reports the SMT solver doing heavy case analysis:
/// e.g. all (size-exponent, subregion-mask) combinations of a Cortex-M
/// region.
pub fn product2<A: Copy, B: Copy>(a: &[A], b: &[B]) -> Vec<(A, B)> {
    let mut out = Vec::with_capacity(a.len() * b.len());
    for &x in a {
        for &y in b {
            out.push((x, y));
        }
    }
    out
}

/// Exhaustive product over three small domains.
pub fn product3<A: Copy, B: Copy, C: Copy>(a: &[A], b: &[B], c: &[C]) -> Vec<(A, B, C)> {
    let mut out = Vec::with_capacity(a.len() * b.len() * c.len());
    for &x in a {
        for &y in b {
            for &z in c {
                out.push((x, y, z));
            }
        }
    }
    out
}

/// The allocator parameter space used to discharge the memory-allocation
/// obligations (the domain on which the paper's BUG1 manifests).
///
/// `unalloc_start` varies over misaligned RAM offsets; `app_size` and
/// `kernel_size` vary across subregion-granularity steps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AllocParams {
    /// First address of unallocated RAM handed to the allocator.
    pub unalloc_start: usize,
    /// Bytes of unallocated RAM available.
    pub unalloc_size: usize,
    /// Minimum total size the process loader demands.
    pub min_size: usize,
    /// Bytes of RAM the application requested.
    pub app_size: usize,
    /// Bytes reserved for the kernel-owned grant region.
    pub kernel_size: usize,
}

/// Enumerates an adversarial grid of allocation parameters.
///
/// `density` scales how many points are produced (the verifier uses a higher
/// density for the monolithic allocator, matching the paper's observation
/// that over 90% of verification time went to `allocate_app_mem_region`).
pub fn alloc_param_grid(ram_base: usize, ram_size: usize, density: usize) -> Vec<AllocParams> {
    let mut out = Vec::new();
    let start_steps = 1 + 4 * density;
    let size_steps = 1 + 3 * density;
    for si in 0..start_steps {
        // Walk starts across misalignments: subregion-size strides plus odd
        // offsets that force the allocator's realignment path.
        let unalloc_start = ram_base + si * 96 + (si % 3) * 4;
        for ai in 0..size_steps {
            let app_size = 512 + ai * 384 + (ai % 2) * 60;
            for ki in 0..size_steps {
                let kernel_size = 128 + ki * 172;
                for min_mult in [1usize, 2] {
                    let min_size = app_size * min_mult / 2 + kernel_size;
                    let unalloc_size = ram_size - (unalloc_start - ram_base);
                    out.push(AllocParams {
                        unalloc_start,
                        unalloc_size,
                        min_size,
                        app_size,
                        kernel_size,
                    });
                }
            }
        }
    }
    out
}

/// Enumerates brk-style break updates relative to an allocated block.
///
/// Includes the adversarial "shrink below memory start" and "grow past the
/// grant region" points that trigger BUG3 in the unvalidated legacy path.
pub fn brk_param_grid(memory_start: usize, memory_size: usize, density: usize) -> Vec<usize> {
    let mut out = Vec::new();
    let end = memory_start + memory_size;
    let steps = 8 * density.max(1);
    for i in 0..=steps {
        out.push(memory_start + (memory_size * i) / steps);
    }
    // Adversarial corners: just below start, just past end, and extremes.
    out.extend([
        memory_start.saturating_sub(1),
        memory_start.saturating_sub(64),
        end + 1,
        end + 4096,
        0,
        usize::MAX / 2,
    ]);
    out.sort_unstable();
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corners_include_bounds_and_pow2_neighbours() {
        let d = UsizeDomain::new(10, 100);
        let corners = d.corners();
        assert!(corners.contains(&10));
        assert!(corners.contains(&100));
        assert!(corners.contains(&16));
        assert!(corners.contains(&15));
        assert!(corners.contains(&17));
        assert!(corners.contains(&64));
        assert!(corners.iter().all(|&c| (10..=100).contains(&c)));
    }

    #[test]
    fn samples_are_deterministic_and_in_range() {
        let mut d1 = UsizeDomain::new(0, 1 << 20);
        let mut d2 = UsizeDomain::new(0, 1 << 20);
        let s1 = d1.samples(256);
        let s2 = d2.samples(256);
        assert_eq!(s1, s2);
        assert_eq!(s1.len(), 256);
        assert!(s1.iter().all(|&v| v <= 1 << 20));
    }

    #[test]
    #[should_panic(expected = "empty domain")]
    fn inverted_domain_panics() {
        let _ = UsizeDomain::new(5, 4);
    }

    #[test]
    fn product_sizes() {
        let p2 = product2(&[1, 2, 3], &['a', 'b']);
        assert_eq!(p2.len(), 6);
        let p3 = product3(&[1, 2], &[3, 4], &[5, 6, 7]);
        assert_eq!(p3.len(), 12);
        assert!(p3.contains(&(2, 4, 7)));
    }

    #[test]
    fn alloc_grid_scales_with_density_and_stays_in_ram() {
        let small = alloc_param_grid(0x2000_0000, 0x1_0000, 1);
        let big = alloc_param_grid(0x2000_0000, 0x1_0000, 3);
        assert!(big.len() > small.len() * 3);
        for p in &small {
            assert!(p.unalloc_start >= 0x2000_0000);
            assert!(p.unalloc_start + p.unalloc_size <= 0x2000_0000 + 0x1_0000);
        }
    }

    #[test]
    fn brk_grid_contains_adversarial_corners() {
        let g = brk_param_grid(0x2000_0000, 8192, 1);
        assert!(g.contains(&(0x2000_0000 - 1)));
        assert!(g.contains(&(0x2000_0000 + 8192 + 1)));
        assert!(g.contains(&0));
        assert!(g.contains(&0x2000_0000));
        assert!(g.contains(&(0x2000_0000 + 8192)));
    }
}
