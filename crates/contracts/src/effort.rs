//! Proof-effort accounting: regenerates the paper's Figure 10.
//!
//! Figure 10 reports, per component, the Rust source LOC, the number of
//! functions (and how many are trusted), and the LOC of Flux specifications
//! (and how many specify trusted functions). This module scans this
//! repository's own sources and produces the same table for the
//! reproduction, so the spec-to-code ratio claim ("about 3.5 KLOC of
//! annotations for 22 KLOC of source") can be checked against what we built.

use std::fs;
use std::path::{Path, PathBuf};

/// A component row of Figure 10 mapped onto this repository's directories.
#[derive(Debug, Clone)]
pub struct ComponentSpec {
    /// Display name, e.g. `"Kernel"`.
    pub name: &'static str,
    /// Directories or files whose `.rs` sources belong to the component.
    pub paths: Vec<PathBuf>,
}

/// Counters extracted from one component's sources.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EffortCounts {
    /// Non-blank, non-comment source lines (test modules excluded).
    pub source_loc: usize,
    /// Number of `fn` items.
    pub fns: usize,
    /// Functions explicitly marked trusted (`// TRUSTED:` marker).
    pub trusted_fns: usize,
    /// Lines carrying contract annotations (`requires!`, `ensures!`,
    /// `invariant!`, lemma invocations, checked arithmetic obligations).
    pub spec_loc: usize,
    /// Spec lines attached to trusted functions.
    pub trusted_spec_loc: usize,
}

impl EffortCounts {
    fn add(&mut self, other: EffortCounts) {
        self.source_loc += other.source_loc;
        self.fns += other.fns;
        self.trusted_fns += other.trusted_fns;
        self.spec_loc += other.spec_loc;
        self.trusted_spec_loc += other.trusted_spec_loc;
    }
}

/// Returns the default component → directory mapping for this workspace,
/// rooted at `workspace_root` (the directory containing `crates/`).
pub fn default_components(workspace_root: &Path) -> Vec<ComponentSpec> {
    let c = |s: &str| workspace_root.join(s);
    vec![
        ComponentSpec {
            name: "Kernel",
            paths: vec![
                c("crates/kernel/src"),
                c("crates/core/src/region.rs"),
                c("crates/core/src/mpu.rs"),
                c("crates/core/src/breaks.rs"),
                c("crates/core/src/allocator.rs"),
                c("crates/core/src/dma.rs"),
                c("crates/core/src/lib.rs"),
            ],
        },
        ComponentSpec {
            name: "ARM MPU",
            paths: vec![
                c("crates/hw/src/cortexm"),
                c("crates/core/src/cortexm.rs"),
                c("crates/legacy/src/cortexm.rs"),
            ],
        },
        ComponentSpec {
            name: "Risc-V MPU",
            paths: vec![
                c("crates/hw/src/riscv"),
                c("crates/core/src/riscv.rs"),
                c("crates/legacy/src/riscv.rs"),
            ],
        },
        ComponentSpec {
            name: "Flux-Std",
            paths: vec![c("crates/contracts/src")],
        },
        ComponentSpec {
            name: "FluxArm",
            paths: vec![c("crates/fluxarm/src")],
        },
    ]
}

/// Scans a single Rust source string.
///
/// Heuristics: comment-only and blank lines are not source; everything from
/// a `#[cfg(test)]` onwards is excluded (test modules sit at the end of each
/// file in this codebase); a line is a *spec line* if it carries one of the
/// contract markers.
pub fn scan_source(text: &str) -> EffortCounts {
    let mut counts = EffortCounts::default();
    // `pending_trusted` is set by a `// TRUSTED:` marker and consumed by the
    // next `fn` item; `current_fn_trusted` covers that function's body.
    let mut pending_trusted = false;
    let mut current_fn_trusted = false;
    for line in text.lines() {
        let trimmed = line.trim();
        if trimmed.starts_with("#[cfg(test)]") {
            break;
        }
        if trimmed.is_empty()
            || trimmed.starts_with("//")
            || trimmed.starts_with("/*")
            || trimmed.starts_with('*')
        {
            if trimmed.contains("TRUSTED:") {
                pending_trusted = true;
            }
            continue;
        }
        counts.source_loc += 1;
        let is_fn =
            trimmed.contains("fn ") && !trimmed.contains("fn(") && !trimmed.starts_with("//");
        if is_fn {
            counts.fns += 1;
            current_fn_trusted = pending_trusted;
            if pending_trusted {
                counts.trusted_fns += 1;
            }
            pending_trusted = false;
        }
        let is_spec = [
            "requires!(",
            "ensures!(",
            "invariant!(",
            "lemma_",
            "checked_add(",
            "checked_sub(",
            "checked_mul(",
            "add_fn(",
            "add_trusted(",
            "add_builtin_safety(",
        ]
        .iter()
        .any(|marker| trimmed.contains(marker));
        if is_spec {
            counts.spec_loc += 1;
            if current_fn_trusted || trimmed.contains("add_trusted(") {
                counts.trusted_spec_loc += 1;
            }
        }
    }
    counts
}

/// Recursively scans every `.rs` file under `path` (or the file itself).
pub fn scan_path(path: &Path) -> EffortCounts {
    let mut counts = EffortCounts::default();
    if path.is_file() {
        if path.extension().is_some_and(|e| e == "rs") {
            if let Ok(text) = fs::read_to_string(path) {
                counts.add(scan_source(&text));
            }
        }
        return counts;
    }
    let Ok(entries) = fs::read_dir(path) else {
        return counts;
    };
    let mut paths: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
    paths.sort();
    for p in paths {
        counts.add(scan_path(&p));
    }
    counts
}

/// One rendered row of the Figure 10 table.
#[derive(Debug, Clone)]
pub struct EffortRow {
    /// Component name.
    pub name: &'static str,
    /// Scanned counters.
    pub counts: EffortCounts,
}

/// Scans all components and returns the table rows plus a total row.
pub fn effort_table(components: &[ComponentSpec]) -> (Vec<EffortRow>, EffortCounts) {
    let mut rows = Vec::new();
    let mut total = EffortCounts::default();
    for spec in components {
        let mut counts = EffortCounts::default();
        for p in &spec.paths {
            counts.add(scan_path(p));
        }
        total.add(counts);
        rows.push(EffortRow {
            name: spec.name,
            counts,
        });
    }
    (rows, total)
}

/// Renders the Figure 10 table as text.
pub fn render_fig10(rows: &[EffortRow], total: &EffortCounts) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<12} {:>8} {:>14} {:>16}\n",
        "Component", "Source", "Fns(Trusted)", "Specs(Trusted)"
    ));
    let fmt_row = |name: &str, c: &EffortCounts| {
        format!(
            "{:<12} {:>8} {:>9} ({:>2}) {:>11} ({:>2})\n",
            name, c.source_loc, c.fns, c.trusted_fns, c.spec_loc, c.trusted_spec_loc
        )
    };
    for row in rows {
        out.push_str(&fmt_row(row.name, &row.counts));
    }
    out.push_str(&fmt_row("Total", total));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
//! Module docs.

/// A documented function.
pub fn alloc(a: usize, b: usize) -> usize {
    requires!("alloc", a > 0);
    let c = checked_add("alloc", a, b);
    ensures!("alloc", c >= a);
    c
}

// TRUSTED: formatting only, out of scope.
pub fn fmt_fault() {
    lemma_pow2_octet(32);
}

#[cfg(test)]
mod tests {
    fn not_counted() {}
}
"#;

    #[test]
    fn scan_counts_fns_and_specs() {
        let c = scan_source(SAMPLE);
        assert_eq!(c.fns, 2);
        assert_eq!(c.trusted_fns, 1);
        // requires!, checked_add, ensures!, lemma_ = 4 spec lines.
        assert_eq!(c.spec_loc, 4);
        assert_eq!(c.trusted_spec_loc, 1);
    }

    #[test]
    fn test_modules_excluded_from_loc() {
        let with_tests = scan_source(SAMPLE);
        let without = scan_source(SAMPLE.split("#[cfg(test)]").next().unwrap());
        assert_eq!(with_tests.source_loc, without.source_loc);
    }

    #[test]
    fn blank_and_comment_lines_not_source() {
        let c = scan_source("// comment\n\n/// doc\n//! mod doc\n");
        assert_eq!(c.source_loc, 0);
    }

    #[test]
    fn scanning_this_crate_finds_substance() {
        let src_dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("src");
        let c = scan_path(&src_dir);
        assert!(c.source_loc > 300, "got {}", c.source_loc);
        assert!(c.fns > 20);
        assert!(c.spec_loc > 10);
    }

    #[test]
    fn render_includes_all_components() {
        let rows = vec![EffortRow {
            name: "Kernel",
            counts: EffortCounts {
                source_loc: 100,
                fns: 10,
                trusted_fns: 1,
                spec_loc: 20,
                trusted_spec_loc: 2,
            },
        }];
        let total = rows[0].counts;
        let table = render_fig10(&rows, &total);
        assert!(table.contains("Kernel"));
        assert!(table.contains("Total"));
        assert!(table.contains("100"));
    }
}
