//! The verification driver: discharges obligations and reports statistics.
//!
//! Mirrors how the paper runs `flux` over TickTock: modular, per-function
//! checking with wall-clock timing, summarized per component as in Figure 12
//! (`Fns`, `Total`, `Max`, `Mean`, `StdDev`).

use crate::obligation::{CheckResult, Registry};
use crate::span::SourceIndex;
use crate::vcache::{verdict_key, Verdict, VerdictCache};
use crate::{with_mode, Mode};
use std::collections::BTreeMap;
use std::time::{Duration, Instant};

/// Verdict-key tag for whole-function verification verdicts (audit passes
/// use their own tags so the namespaces never collide in one cache file).
pub const TAG_VERIFY: u8 = 0;

/// The result of verifying one function (all its obligations).
#[derive(Debug, Clone)]
pub struct FunctionResult {
    /// Component the function belongs to.
    pub component: &'static str,
    /// Fully qualified function name.
    pub function: String,
    /// Wall-clock time spent discharging the function's obligations.
    pub duration: Duration,
    /// Total concrete cases explored across obligations.
    pub cases: u64,
    /// Counterexamples found, if any (empty means verified).
    pub refutations: Vec<String>,
    /// Whether any obligation was trusted (assumed).
    pub trusted: bool,
    /// Whether this result was served from the incremental cache.
    pub cached: bool,
}

impl FunctionResult {
    /// Returns `true` if the function verified (no refutations).
    pub fn verified(&self) -> bool {
        self.refutations.is_empty()
    }
}

/// Per-component timing summary: one row of Figure 12.
#[derive(Debug, Clone, PartialEq)]
pub struct ComponentStats {
    /// Number of functions checked.
    pub fns: usize,
    /// Total verification time.
    pub total: Duration,
    /// Maximum single-function verification time.
    pub max: Duration,
    /// Mean per-function verification time.
    pub mean: Duration,
    /// Standard deviation of per-function verification time.
    pub stddev: Duration,
    /// Functions with at least one refuted obligation.
    pub refuted_fns: usize,
    /// Functions whose result was served from the incremental cache.
    /// Their (near-zero) durations still enter the timing summary, so a
    /// warm run shows the incremental speedup directly in `total`.
    pub cached_fns: usize,
}

/// A full verification run over a [`Registry`].
#[derive(Debug, Clone, Default)]
pub struct VerificationReport {
    /// Per-function results, in registration order.
    pub functions: Vec<FunctionResult>,
}

impl VerificationReport {
    /// Returns `true` if every function verified.
    pub fn all_verified(&self) -> bool {
        self.functions.iter().all(FunctionResult::verified)
    }

    /// Returns the functions that failed verification.
    pub fn refuted(&self) -> Vec<&FunctionResult> {
        self.functions.iter().filter(|f| !f.verified()).collect()
    }

    /// Summarizes one component; `component = ""` summarizes everything.
    pub fn component_stats(&self, component: &str) -> ComponentStats {
        let durations: Vec<Duration> = self
            .functions
            .iter()
            .filter(|f| component.is_empty() || f.component == component)
            .map(|f| f.duration)
            .collect();
        let refuted_fns = self
            .functions
            .iter()
            .filter(|f| (component.is_empty() || f.component == component) && !f.verified())
            .count();
        let cached_fns = self
            .functions
            .iter()
            .filter(|f| (component.is_empty() || f.component == component) && f.cached)
            .count();
        let fns = durations.len();
        let total: Duration = durations.iter().sum();
        let max = durations.iter().max().copied().unwrap_or_default();
        let mean = if fns == 0 {
            Duration::ZERO
        } else {
            total / fns as u32
        };
        let mean_s = mean.as_secs_f64();
        let var = if fns == 0 {
            0.0
        } else {
            durations
                .iter()
                .map(|d| {
                    let diff = d.as_secs_f64() - mean_s;
                    diff * diff
                })
                .sum::<f64>()
                / fns as f64
        };
        ComponentStats {
            fns,
            total,
            max,
            mean,
            stddev: Duration::from_secs_f64(var.sqrt()),
            refuted_fns,
            cached_fns,
        }
    }

    /// Fraction of functions served from the incremental cache (0.0 when
    /// the report is empty): the `cache_hit_rate` of BENCH_fig12.json.
    pub fn cache_hit_rate(&self) -> f64 {
        if self.functions.is_empty() {
            return 0.0;
        }
        let cached = self.functions.iter().filter(|f| f.cached).count();
        cached as f64 / self.functions.len() as f64
    }

    /// Groups results per component, sorted by component name.
    pub fn by_component(&self) -> BTreeMap<&'static str, ComponentStats> {
        let mut components: Vec<&'static str> =
            self.functions.iter().map(|f| f.component).collect();
        components.sort_unstable();
        components.dedup();
        components
            .into_iter()
            .map(|c| (c, self.component_stats(c)))
            .collect()
    }

    /// Renders the Figure 12 table.
    pub fn render_fig12(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<24} {:>6} {:>10} {:>10} {:>10} {:>10}\n",
            "Component", "Fns.", "Total", "Max", "Mean", "StdDev."
        ));
        for (component, stats) in self.by_component() {
            out.push_str(&format!(
                "{:<24} {:>6} {:>10} {:>10} {:>10} {:>10}\n",
                component,
                stats.fns,
                fmt_duration(stats.total),
                fmt_duration(stats.max),
                fmt_duration(stats.mean),
                fmt_duration(stats.stddev),
            ));
        }
        out
    }
}

/// Formats a duration like the paper: `5m19s`, `36s`, `0.05s`.
pub fn fmt_duration(d: Duration) -> String {
    let secs = d.as_secs_f64();
    if secs >= 60.0 {
        let m = (secs / 60.0).floor() as u64;
        let s = (secs - m as f64 * 60.0).round() as u64;
        format!("{m}m{s}s")
    } else if secs >= 1.0 {
        format!("{secs:.1}s")
    } else {
        format!("{secs:.3}s")
    }
}

/// The verification driver.
#[derive(Debug, Default)]
pub struct Verifier {
    /// When `true`, stop a function's remaining obligations at the first
    /// refutation (Flux reports all errors; we keep them all by default).
    pub fail_fast: bool,
}

impl Verifier {
    /// Creates a verifier with default settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Discharges every obligation in `registry`, grouped per function.
    ///
    /// Obligations run in [`Mode::Observe`] so that contract failures inside
    /// checked code surface as refutations rather than panics — matching
    /// Flux, which reports errors instead of crashing the build.
    pub fn verify(&self, registry: &Registry) -> VerificationReport {
        self.verify_with_cache(registry, &mut VerificationCache::disabled())
    }

    /// Incremental verification: functions whose obligation signature is
    /// unchanged since the last verified run are served from `cache`
    /// instead of re-checked.
    ///
    /// This is the workflow §6.3 highlights: "Flux is a modular verifier
    /// that checks each function in isolation … allow\[ing\] for incremental
    /// and interactive verification during code development". Refuted
    /// functions are never cached, so fixes are always re-checked.
    pub fn verify_with_cache(
        &self,
        registry: &Registry,
        cache: &mut VerificationCache,
    ) -> VerificationReport {
        let mut order: Vec<(&'static str, String)> = Vec::new();
        for o in registry.obligations() {
            let key = (o.component, o.function.clone());
            if !order.contains(&key) {
                order.push(key);
            }
        }

        let mut report = VerificationReport::default();
        for (component, function) in order {
            let signature = cache.signature(registry, component, &function);
            if let Some(hit) = cache.lookup(component, &function, signature) {
                let mut cached = hit.clone();
                cached.cached = true;
                report.functions.push(cached);
                continue;
            }
            let mut cases = 0u64;
            let mut refutations = Vec::new();
            let mut trusted = false;
            let start = Instant::now();
            for o in registry
                .obligations()
                .iter()
                .filter(|o| o.component == component && o.function == function)
            {
                let result = with_mode(Mode::Observe, || (o.check)());
                // Contract failures raised by the code under check while in
                // Observe mode become refutations too.
                let in_code_violations = crate::take_violations();
                for v in in_code_violations {
                    refutations.push(v.to_string());
                }
                match result {
                    CheckResult::Verified { cases: c } => cases += c,
                    CheckResult::Refuted { counterexample } => {
                        refutations.push(counterexample);
                        if self.fail_fast {
                            break;
                        }
                    }
                    CheckResult::Trusted => trusted = true,
                }
            }
            let result = FunctionResult {
                component,
                function,
                duration: start.elapsed(),
                cases,
                refutations,
                trusted,
                cached: false,
            };
            cache.store(signature, &result);
            report.functions.push(result);
        }
        report
    }

    /// Persistent incremental verification: functions whose source content
    /// hash *and* obligation-domain hash both match a verdict in `cache`
    /// are skipped; everything else is discharged and (if verified) stored.
    ///
    /// Staleness gates, in the cache key itself:
    /// * a changed function body → different [`SourceIndex::anchor_hash`];
    /// * a changed spec (obligation added/removed/re-kinded/re-trusted) →
    ///   different [`obligation_signature`];
    /// * a toolchain/config change → the caller loads the cache under a
    ///   different config hash, which discards every verdict.
    ///
    /// Refuted functions are never stored, so a failure is always
    /// re-discharged. Obligations whose name cannot be anchored to a
    /// scanned `fn` span fall back to the whole-workspace hash: they stay
    /// cacheable on an unchanged tree but go stale on *any* source edit.
    pub fn verify_incremental(
        &self,
        registry: &Registry,
        cache: &mut VerdictCache,
        index: &SourceIndex,
    ) -> VerificationReport {
        let mut order: Vec<(&'static str, String)> = Vec::new();
        for o in registry.obligations() {
            let key = (o.component, o.function.clone());
            if !order.contains(&key) {
                order.push(key);
            }
        }

        let mut report = VerificationReport::default();
        for (component, function) in order {
            let domain_hash = obligation_signature(registry, component, &function);
            let fn_hash = index.anchor_hash(&function);
            let key_hash = verdict_key(TAG_VERIFY, component, &function);
            let lookup_start = Instant::now();
            if let Some(v) = cache.lookup(key_hash, fn_hash, domain_hash) {
                report.functions.push(FunctionResult {
                    component,
                    function,
                    // The honest warm cost: the lookup itself, not the
                    // original discharge — so Figure 12 totals show the
                    // incremental speedup directly.
                    duration: lookup_start.elapsed(),
                    cases: v.cases,
                    refutations: Vec::new(),
                    trusted: v.trusted,
                    cached: true,
                });
                continue;
            }
            let mut cases = 0u64;
            let mut refutations = Vec::new();
            let mut trusted = false;
            let mut kind_tag = 0u8;
            let start = Instant::now();
            for o in registry
                .obligations()
                .iter()
                .filter(|o| o.component == component && o.function == function)
            {
                kind_tag = o.kind as u8;
                let result = with_mode(Mode::Observe, || (o.check)());
                for v in crate::take_violations() {
                    refutations.push(v.to_string());
                }
                match result {
                    CheckResult::Verified { cases: c } => cases += c,
                    CheckResult::Refuted { counterexample } => {
                        refutations.push(counterexample);
                        if self.fail_fast {
                            break;
                        }
                    }
                    CheckResult::Trusted => trusted = true,
                }
            }
            let duration = start.elapsed();
            if refutations.is_empty() {
                cache.store(Verdict {
                    key_hash,
                    fn_hash,
                    domain_hash,
                    cases,
                    duration_ns: duration.as_nanos().min(u64::MAX as u128) as u64,
                    trusted,
                    kind: kind_tag,
                });
            }
            report.functions.push(FunctionResult {
                component,
                function,
                duration,
                cases,
                refutations,
                trusted,
                cached: false,
            });
        }
        report
    }
}

/// The obligation-domain signature of one function: a fingerprint of its
/// registered contract set (kind, trust, name per obligation). A changed
/// spec — an obligation added, removed, re-kinded or re-trusted — changes
/// the signature, the analogue of Flux re-checking a function whose
/// refinement annotations changed. This is the `domain_hash` half of every
/// persistent verdict key.
pub fn obligation_signature(registry: &Registry, component: &str, function: &str) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    let mut mix = |v: u64| {
        hash ^= v;
        hash = hash.wrapping_mul(0x1000_0000_01b3);
    };
    for o in registry
        .obligations()
        .iter()
        .filter(|o| o.component == component && o.function == function)
    {
        mix(o.kind as u64 + 1);
        mix(o.trusted as u64 + 11);
        for b in o.function.bytes() {
            mix(b as u64);
        }
    }
    hash
}

/// A cache of per-function verification results for incremental runs.
#[derive(Debug, Default)]
pub struct VerificationCache {
    enabled: bool,
    entries: BTreeMap<(String, String), (u64, FunctionResult)>,
}

impl VerificationCache {
    /// Creates an enabled cache.
    pub fn new() -> Self {
        Self {
            enabled: true,
            entries: BTreeMap::new(),
        }
    }

    /// Creates a disabled cache (every function re-checked).
    pub fn disabled() -> Self {
        Self::default()
    }

    /// Number of verified functions currently cached.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Computes the obligation signature of a function: the fingerprint of
    /// its registered contract set. A changed contract (added, removed, or
    /// different kind/trust) invalidates the cache entry — the analogue of
    /// Flux re-checking a function whose spec changed.
    fn signature(&self, registry: &Registry, component: &str, function: &str) -> u64 {
        obligation_signature(registry, component, function)
    }

    fn lookup(&self, component: &str, function: &str, signature: u64) -> Option<&FunctionResult> {
        if !self.enabled {
            return None;
        }
        let (sig, result) = self
            .entries
            .get(&(component.to_string(), function.to_string()))?;
        (*sig == signature).then_some(result)
    }

    fn store(&mut self, signature: u64, result: &FunctionResult) {
        // Verified functions are cacheable; trusted ones too (there is
        // nothing to re-discharge while their signature is unchanged).
        if self.enabled && result.verified() {
            self.entries.insert(
                (result.component.to_string(), result.function.clone()),
                (signature, result.clone()),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obligation::Registry;
    use crate::ContractKind;

    fn registry_with(pass: bool) -> Registry {
        let mut r = Registry::new();
        r.add_fn("c1", "f", ContractKind::Post, move || {
            if pass {
                CheckResult::Verified { cases: 3 }
            } else {
                CheckResult::Refuted {
                    counterexample: "x = 7".into(),
                }
            }
        });
        r
    }

    #[test]
    fn verified_registry_reports_all_verified() {
        let report = Verifier::new().verify(&registry_with(true));
        assert!(report.all_verified());
        assert_eq!(report.functions.len(), 1);
        assert_eq!(report.functions[0].cases, 3);
    }

    #[test]
    fn refuted_registry_reports_counterexample() {
        let report = Verifier::new().verify(&registry_with(false));
        assert!(!report.all_verified());
        let refuted = report.refuted();
        assert_eq!(refuted.len(), 1);
        assert_eq!(refuted[0].refutations, vec!["x = 7".to_string()]);
    }

    #[test]
    fn obligations_grouped_per_function() {
        let mut r = Registry::new();
        r.add_fn("c", "f", ContractKind::Pre, || CheckResult::Verified {
            cases: 1,
        });
        r.add_fn("c", "f", ContractKind::Post, || CheckResult::Verified {
            cases: 2,
        });
        r.add_fn("c", "g", ContractKind::Post, || CheckResult::Verified {
            cases: 4,
        });
        let report = Verifier::new().verify(&r);
        assert_eq!(report.functions.len(), 2);
        assert_eq!(report.functions[0].cases, 3);
        assert_eq!(report.functions[1].cases, 4);
    }

    #[test]
    fn in_code_contract_violations_become_refutations() {
        let mut r = Registry::new();
        r.add_fn("c", "violates", ContractKind::Invariant, || {
            // Code under check trips a contract while running in Observe mode.
            crate::invariant!("inner", 1 == 2);
            CheckResult::Verified { cases: 1 }
        });
        let report = Verifier::new().verify(&r);
        assert!(!report.all_verified());
        assert!(report.functions[0].refutations[0].contains("inner"));
    }

    #[test]
    fn component_stats_computes_totals() {
        let mut r = Registry::new();
        for name in ["a", "b", "c"] {
            r.add_fn("k", name, ContractKind::Post, || CheckResult::Verified {
                cases: 1,
            });
        }
        let report = Verifier::new().verify(&r);
        let stats = report.component_stats("k");
        assert_eq!(stats.fns, 3);
        assert!(stats.total >= stats.max);
        assert_eq!(stats.refuted_fns, 0);
        let all = report.component_stats("");
        assert_eq!(all.fns, 3);
    }

    #[test]
    fn single_function_component_has_zero_stddev() {
        let report = Verifier::new().verify(&registry_with(true));
        let stats = report.component_stats("c1");
        assert_eq!(stats.fns, 1);
        assert_eq!(stats.stddev, Duration::ZERO);
        assert_eq!(stats.total, stats.max);
        assert_eq!(stats.total, stats.mean);
    }

    #[test]
    fn empty_component_stats_are_all_zero() {
        let report = Verifier::new().verify(&registry_with(true));
        let stats = report.component_stats("no-such-component");
        assert_eq!(stats.fns, 0);
        assert_eq!(stats.total, Duration::ZERO);
        assert_eq!(stats.max, Duration::ZERO);
        assert_eq!(stats.mean, Duration::ZERO);
        assert_eq!(stats.stddev, Duration::ZERO);
        assert_eq!(stats.refuted_fns, 0);
        assert_eq!(stats.cached_fns, 0);
    }

    #[test]
    fn all_trusted_component_verifies_with_zero_cases() {
        let mut r = Registry::new();
        r.add_trusted("k", "axiom_a", ContractKind::Lemma);
        r.add_trusted("k", "axiom_b", ContractKind::Post);
        let report = Verifier::new().verify(&r);
        assert!(report.all_verified());
        assert!(report.functions.iter().all(|f| f.trusted));
        assert!(report.functions.iter().all(|f| f.cases == 0));
        let stats = report.component_stats("k");
        assert_eq!(stats.fns, 2);
        assert_eq!(stats.refuted_fns, 0);
    }

    #[test]
    fn cached_results_are_counted_in_component_stats() {
        let mut r = Registry::new();
        r.add_fn("k", "f", ContractKind::Post, || CheckResult::Verified {
            cases: 1,
        });
        r.add_fn("k", "g", ContractKind::Post, || CheckResult::Verified {
            cases: 1,
        });
        let verifier = Verifier::new();
        let mut cache = VerificationCache::new();
        let cold = verifier.verify_with_cache(&r, &mut cache);
        assert_eq!(cold.component_stats("k").cached_fns, 0);
        // Add a third function: the warm run re-checks only it.
        r.add_fn("k", "h", ContractKind::Post, || CheckResult::Verified {
            cases: 1,
        });
        let warm = verifier.verify_with_cache(&r, &mut cache);
        let stats = warm.component_stats("k");
        assert_eq!(stats.fns, 3);
        assert_eq!(stats.cached_fns, 2);
        assert_eq!(warm.component_stats("").cached_fns, 2);
    }

    #[test]
    fn trusted_obligations_are_marked() {
        let mut r = Registry::new();
        r.add_trusted("k", "lemma", ContractKind::Lemma);
        let report = Verifier::new().verify(&r);
        assert!(report.functions[0].trusted);
        assert!(report.all_verified());
    }

    #[test]
    fn fig12_rendering_contains_components() {
        let report = Verifier::new().verify(&registry_with(true));
        let table = report.render_fig12();
        assert!(table.contains("Component"));
        assert!(table.contains("c1"));
    }

    #[test]
    fn duration_formatting_matches_paper_style() {
        assert_eq!(fmt_duration(Duration::from_secs(319)), "5m19s");
        assert_eq!(fmt_duration(Duration::from_secs(36)), "36.0s");
        assert_eq!(fmt_duration(Duration::from_millis(50)), "0.050s");
    }

    #[test]
    fn incremental_cache_skips_verified_functions() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;
        let runs = Arc::new(AtomicUsize::new(0));
        let runs2 = Arc::clone(&runs);
        let mut r = Registry::new();
        r.add_fn("c", "f", ContractKind::Post, move || {
            runs2.fetch_add(1, Ordering::SeqCst);
            CheckResult::Verified { cases: 1 }
        });
        let verifier = Verifier::new();
        let mut cache = VerificationCache::new();
        let first = verifier.verify_with_cache(&r, &mut cache);
        assert!(!first.functions[0].cached);
        assert_eq!(cache.len(), 1);
        let second = verifier.verify_with_cache(&r, &mut cache);
        assert!(second.functions[0].cached);
        assert_eq!(runs.load(Ordering::SeqCst), 1, "checked only once");
        assert!(second.all_verified());
    }

    #[test]
    fn refuted_functions_are_never_cached() {
        let mut r = Registry::new();
        r.add_fn("c", "bad", ContractKind::Post, || CheckResult::Refuted {
            counterexample: "x".into(),
        });
        let verifier = Verifier::new();
        let mut cache = VerificationCache::new();
        verifier.verify_with_cache(&r, &mut cache);
        assert!(cache.is_empty());
        let again = verifier.verify_with_cache(&r, &mut cache);
        assert!(!again.functions[0].cached);
    }

    #[test]
    fn changed_contract_signature_invalidates_cache() {
        let mut r = Registry::new();
        r.add_fn("c", "f", ContractKind::Post, || CheckResult::Verified {
            cases: 1,
        });
        let verifier = Verifier::new();
        let mut cache = VerificationCache::new();
        verifier.verify_with_cache(&r, &mut cache);
        // Same function, an ADDITIONAL precondition registered: the spec
        // changed, so the cached result must not be reused.
        r.add_fn("c", "f", ContractKind::Pre, || CheckResult::Verified {
            cases: 1,
        });
        let second = verifier.verify_with_cache(&r, &mut cache);
        assert!(!second.functions[0].cached);
        assert_eq!(second.functions[0].cases, 2);
    }

    fn index_of(src: &str) -> SourceIndex {
        SourceIndex::from_files(&[crate::span::scan_text("crates/x/src/lib.rs", src)])
    }

    #[test]
    fn incremental_hits_on_unchanged_fn_and_spec() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;
        let runs = Arc::new(AtomicUsize::new(0));
        let runs2 = Arc::clone(&runs);
        let mut r = Registry::new();
        r.add_fn("c", "anchored_fn", ContractKind::Post, move || {
            runs2.fetch_add(1, Ordering::SeqCst);
            CheckResult::Verified { cases: 5 }
        });
        let idx = index_of("pub fn anchored_fn() {\n    body();\n}\n");
        let verifier = Verifier::new();
        let mut cache = VerdictCache::new(1);
        let cold = verifier.verify_incremental(&r, &mut cache, &idx);
        assert!(cold.all_verified());
        assert!(!cold.functions[0].cached);
        assert_eq!(cold.cache_hit_rate(), 0.0);
        let warm = verifier.verify_incremental(&r, &mut cache, &idx);
        assert!(warm.functions[0].cached);
        assert_eq!(warm.functions[0].cases, 5);
        assert_eq!(warm.cache_hit_rate(), 1.0);
        assert_eq!(runs.load(Ordering::SeqCst), 1, "discharged only once");
    }

    #[test]
    fn incremental_rechecks_on_changed_fn_body() {
        let mut r = Registry::new();
        r.add_fn("c", "anchored_fn", ContractKind::Post, || {
            CheckResult::Verified { cases: 1 }
        });
        let verifier = Verifier::new();
        let mut cache = VerdictCache::new(1);
        let idx = index_of("pub fn anchored_fn() {\n    body();\n}\n");
        verifier.verify_incremental(&r, &mut cache, &idx);
        let edited = index_of("pub fn anchored_fn() {\n    EDITED();\n}\n");
        let warm = verifier.verify_incremental(&r, &mut cache, &edited);
        assert!(!warm.functions[0].cached, "edited fn must re-discharge");
    }

    #[test]
    fn incremental_rechecks_on_changed_spec() {
        let mut r = Registry::new();
        r.add_fn("c", "anchored_fn", ContractKind::Post, || {
            CheckResult::Verified { cases: 1 }
        });
        let idx = index_of("pub fn anchored_fn() {\n    body();\n}\n");
        let verifier = Verifier::new();
        let mut cache = VerdictCache::new(1);
        verifier.verify_incremental(&r, &mut cache, &idx);
        // Same source, one more obligation: the spec changed.
        r.add_fn("c", "anchored_fn", ContractKind::Pre, || {
            CheckResult::Verified { cases: 1 }
        });
        let warm = verifier.verify_incremental(&r, &mut cache, &idx);
        assert!(!warm.functions[0].cached, "changed spec must re-discharge");
        assert_eq!(warm.functions[0].cases, 2);
    }

    #[test]
    fn incremental_never_caches_refutations() {
        let mut r = Registry::new();
        r.add_fn("c", "bad_fn", ContractKind::Post, || CheckResult::Refuted {
            counterexample: "x".into(),
        });
        let idx = index_of("pub fn bad_fn() {\n    body();\n}\n");
        let verifier = Verifier::new();
        let mut cache = VerdictCache::new(1);
        verifier.verify_incremental(&r, &mut cache, &idx);
        assert!(cache.is_empty());
        let again = verifier.verify_incremental(&r, &mut cache, &idx);
        assert!(!again.functions[0].cached);
        assert!(!again.all_verified());
    }

    #[test]
    fn unanchored_obligations_go_stale_on_any_source_change() {
        let mut r = Registry::new();
        r.add_fn("c", "not_in_source", ContractKind::Post, || {
            CheckResult::Verified { cases: 1 }
        });
        let verifier = Verifier::new();
        let mut cache = VerdictCache::new(1);
        let idx = index_of("pub fn unrelated() {\n    a();\n}\n");
        verifier.verify_incremental(&r, &mut cache, &idx);
        // Unchanged tree: still a hit via the workspace-hash anchor.
        let warm = verifier.verify_incremental(&r, &mut cache, &idx);
        assert!(warm.functions[0].cached);
        // ANY file change (even an unrelated fn) invalidates it.
        let edited = index_of("pub fn unrelated() {\n    b();\n}\n");
        let stale = verifier.verify_incremental(&r, &mut cache, &edited);
        assert!(!stale.functions[0].cached);
    }

    #[test]
    fn incremental_round_trips_through_the_file_format() {
        let mut r = Registry::new();
        r.add_fn("c", "anchored_fn", ContractKind::Invariant, || {
            CheckResult::Verified { cases: 9 }
        });
        r.add_trusted("c", "axiom", ContractKind::Lemma);
        let idx = index_of("pub fn anchored_fn() {\n    body();\n}\n");
        let verifier = Verifier::new();
        let mut cache = VerdictCache::new(7);
        verifier.verify_incremental(&r, &mut cache, &idx);
        let reloaded = VerdictCache::decode(&cache.encode()).unwrap();
        let mut reloaded = reloaded;
        let warm = verifier.verify_incremental(&r, &mut reloaded, &idx);
        assert!(warm.functions.iter().all(|f| f.cached));
        assert!(warm.functions.iter().any(|f| f.trusted));
        assert_eq!(warm.functions[0].cases, 9);
    }

    #[test]
    fn disabled_cache_never_hits() {
        let mut r = Registry::new();
        r.add_fn("c", "f", ContractKind::Post, || CheckResult::Verified {
            cases: 1,
        });
        let verifier = Verifier::new();
        let mut cache = VerificationCache::disabled();
        verifier.verify_with_cache(&r, &mut cache);
        let second = verifier.verify_with_cache(&r, &mut cache);
        assert!(!second.functions[0].cached);
        assert!(cache.is_empty());
    }
}
