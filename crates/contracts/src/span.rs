//! The shared span/hash layer: lexical Rust source scanning and content
//! hashing, used by both the static auditor (`tt-analysis`) and the
//! incremental verifier ([`crate::vcache`]).
//!
//! The build environment is dependency-frozen (no `syn`), so the scanner is
//! a small line-oriented lexer: it strips comments and string literals with
//! a cross-line state machine, truncates each file at its top-level
//! `#[cfg(test)]` module (test modules sit at the end of every file in this
//! codebase, the same convention `tt_contracts::effort` relies on), and
//! recovers `fn` item spans by brace counting. That is deliberately *not* a
//! full parser: every consumer tolerates over-approximation (a flagged line
//! a human can inspect, a spuriously invalidated cache entry) but never
//! under-approximates — unmatched constructs stay visible rather than
//! vanishing, and a changed function never keeps its old hash.
//!
//! Content hashing is FNV-1a over the *raw* span text (comments included):
//! the incremental verdict cache (`ci/verify_cache.bin`) keys on these
//! hashes, so any textual change to a function — body, signature, contract
//! site, or a `// TRUSTED:` marker — changes its hash and forces
//! re-discharge. Edits past the `#[cfg(test)]` cut do not: test-only churn
//! stays warm.

use std::collections::BTreeMap;

/// A source location in workspace-relative form, printable as `file:line`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// Workspace-relative path, `/`-separated.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
}

impl std::fmt::Display for Span {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}", self.file, self.line)
    }
}

/// One `fn` item recovered by the scanner.
#[derive(Debug, Clone)]
pub struct FnSpan {
    /// The function's name (the identifier after `fn`).
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub start: usize,
    /// 1-based line of the closing brace (inclusive).
    pub end: usize,
    /// Whether the item is `pub` (any visibility qualifier counts).
    pub is_pub: bool,
    /// Whether the signature takes `&mut self` (a mutator candidate).
    pub takes_mut_self: bool,
    /// Whether a `// TRUSTED:` marker comment precedes the item.
    pub trusted: bool,
    /// Non-blank code lines inside the span.
    pub loc: usize,
}

/// A scanned file: raw lines plus a code-only view (comments and string
/// contents removed) and the recovered `fn` spans.
#[derive(Debug, Clone)]
pub struct ScannedFile {
    /// Workspace-relative path, `/`-separated.
    pub rel_path: String,
    /// Original lines, test module excluded.
    pub raw: Vec<String>,
    /// Code-only lines (same indices as `raw`): comments stripped, string
    /// literals replaced by `""`.
    pub code: Vec<String>,
    /// Recovered function spans, in order of appearance.
    pub fns: Vec<FnSpan>,
}

/// The FNV-1a 64-bit offset basis.
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x1000_0000_01b3;

/// FNV-1a over a byte slice.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = FNV_OFFSET;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// An incremental FNV-1a hasher for mixing heterogeneous inputs. Each
/// `mix_*` call folds a length/tag first, so `("ab","c")` and `("a","bc")`
/// hash differently.
#[derive(Debug, Clone, Copy)]
pub struct Fnv(u64);

impl Fnv {
    /// Starts a hash at the FNV offset basis.
    pub fn new() -> Self {
        Fnv(FNV_OFFSET)
    }

    /// Folds one u64 into the state.
    pub fn mix_u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    /// Folds a length-prefixed byte string into the state.
    pub fn mix_bytes(&mut self, bytes: &[u8]) {
        self.mix_u64(bytes.len() as u64);
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    /// Folds a length-prefixed string into the state.
    pub fn mix_str(&mut self, s: &str) {
        self.mix_bytes(s.as_bytes());
    }

    /// The current hash value.
    pub fn finish(self) -> u64 {
        self.0
    }
}

impl Default for Fnv {
    fn default() -> Self {
        Self::new()
    }
}

impl ScannedFile {
    /// Content hash of one recovered function span: FNV-1a over the raw
    /// lines `start..=end` (newline-joined). Any textual change inside the
    /// span — code, contract site, comment, `// TRUSTED:` marker — changes
    /// the hash.
    pub fn fn_content_hash(&self, f: &FnSpan) -> u64 {
        let mut h = Fnv::new();
        for line in &self.raw[f.start - 1..f.end] {
            h.mix_str(line);
        }
        h.finish()
    }

    /// Content hash of the whole audited view of the file (the raw lines
    /// before the `#[cfg(test)]` cut). Test-module edits do not change it.
    pub fn content_hash(&self) -> u64 {
        let mut h = Fnv::new();
        for line in &self.raw {
            h.mix_str(line);
        }
        h.finish()
    }
}

/// A content-hash index over a set of scanned files: the source half of
/// every incremental verdict-cache key.
///
/// Obligation names (`"CortexM::allocate_app_mem_region"`,
/// `"encode_permissions(arm)"`) resolve to scanner-recovered `fn` names by
/// their method component; same-named functions across the workspace fold
/// into one combined hash, so a change to *any* of them invalidates (the
/// safe over-approximation). Obligations whose name matches no recovered
/// `fn` anchor to the whole-workspace hash instead: they go stale on any
/// source change, never silently fresh.
#[derive(Debug, Clone, Default)]
pub struct SourceIndex {
    fns: BTreeMap<String, u64>,
    files: BTreeMap<String, u64>,
    workspace_hash: u64,
}

impl SourceIndex {
    /// Builds the index from scanned files.
    pub fn from_files(files: &[ScannedFile]) -> Self {
        let mut fns: BTreeMap<String, Fnv> = BTreeMap::new();
        let mut file_hashes: BTreeMap<String, u64> = BTreeMap::new();
        // Files arrive in workspace-walk order (sorted); iterate
        // deterministically anyway so the combined hashes are stable.
        let mut sorted: Vec<&ScannedFile> = files.iter().collect();
        sorted.sort_by(|a, b| a.rel_path.cmp(&b.rel_path));
        for file in sorted {
            file_hashes.insert(file.rel_path.clone(), file.content_hash());
            for f in &file.fns {
                let entry = fns.entry(f.name.clone()).or_default();
                entry.mix_str(&file.rel_path);
                entry.mix_u64(file.fn_content_hash(f));
            }
        }
        let mut ws = Fnv::new();
        for (path, hash) in &file_hashes {
            ws.mix_str(path);
            ws.mix_u64(*hash);
        }
        Self {
            fns: fns.into_iter().map(|(k, v)| (k, v.finish())).collect(),
            files: file_hashes,
            workspace_hash: ws.finish(),
        }
    }

    /// Combined content hash of every `fn` with this bare name, if any.
    pub fn fn_hash(&self, name: &str) -> Option<u64> {
        self.fns.get(name).copied()
    }

    /// Content hash of one file's audited view.
    pub fn file_hash(&self, rel_path: &str) -> Option<u64> {
        self.files.get(rel_path).copied()
    }

    /// Hash of the whole indexed source set (paths and contents): changes
    /// when any file changes, appears, or disappears.
    pub fn workspace_hash(&self) -> u64 {
        self.workspace_hash
    }

    /// Resolves an obligation's function name to its source anchor hash.
    ///
    /// Candidates, in order: the full name, the parenthesis-stripped form
    /// (`encode_permissions(arm)` → `encode_permissions`), and the method
    /// half of a `Type::method` path. Unresolvable names anchor to the
    /// workspace hash — stale on any change, never silently fresh.
    pub fn anchor_hash(&self, function: &str) -> u64 {
        let stripped = function.split('(').next().unwrap_or(function);
        let method = stripped.split("::").last().unwrap_or(stripped);
        for cand in [function, stripped, method] {
            if let Some(h) = self.fn_hash(cand) {
                return h;
            }
        }
        self.workspace_hash
    }

    /// Whether `function` resolved to a recovered `fn` span (as opposed to
    /// the whole-workspace fallback anchor).
    pub fn is_anchored(&self, function: &str) -> bool {
        let stripped = function.split('(').next().unwrap_or(function);
        let method = stripped.split("::").last().unwrap_or(stripped);
        [function, stripped, method]
            .iter()
            .any(|c| self.fns.contains_key(*c))
    }
}

/// If a raw-string literal starts at byte `i` of `b` (`r"`, `r#"`,
/// `br#"`, `cr"`, …), returns `(hash_count, content_start)`.
fn raw_string_start(b: &[u8], i: usize) -> Option<(usize, usize)> {
    let boundary = |at: usize| at == 0 || !(b[at - 1].is_ascii_alphanumeric() || b[at - 1] == b'_');
    let mut j = i;
    if (b[j] == b'b' || b[j] == b'c') && j + 1 < b.len() && b[j + 1] == b'r' {
        if !boundary(j) {
            return None;
        }
        j += 1;
    } else if b[j] != b'r' || !boundary(j) {
        return None;
    }
    // `j` is the `r`; count hashes, require an opening quote.
    let mut k = j + 1;
    let mut hashes = 0;
    while k < b.len() && b[k] == b'#' {
        hashes += 1;
        k += 1;
    }
    (k < b.len() && b[k] == b'"').then_some((hashes, k + 1))
}

/// Strips comments and string literals from `text`, preserving line
/// structure. String literals collapse to `""` so that tokens inside them
/// (an `unsafe` in a diagnostic message, a register name in a doc string)
/// never reach the pattern matchers. Handles line and (nested) block
/// comments, plain/byte/C strings, raw strings with any `#` depth and any
/// `b`/`c` prefix (all may span lines), and char literals.
pub fn strip_comments_and_strings(text: &str) -> Vec<String> {
    #[derive(PartialEq)]
    enum St {
        Code,
        Block(usize),
        Str,
        RawStr(usize),
        Char,
    }
    let mut state = St::Code;
    let mut out = Vec::new();
    for line in text.lines() {
        let b = line.as_bytes();
        let mut kept = String::with_capacity(line.len());
        let mut i = 0;
        while i < b.len() {
            match state {
                St::Code => {
                    if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'/' {
                        break; // Line comment: rest of line gone.
                    }
                    if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                        state = St::Block(1);
                        i += 2;
                        continue;
                    }
                    if let Some((hashes, start)) = raw_string_start(b, i) {
                        kept.push_str("\"\"");
                        state = St::RawStr(hashes);
                        i = start;
                        continue;
                    }
                    if b[i] == b'"' {
                        kept.push_str("\"\"");
                        state = St::Str;
                        i += 1;
                        continue;
                    }
                    if b[i] == b'\'' {
                        // Char literal or lifetime. Lifetimes ('a) have an
                        // identifier char right after and no closing quote
                        // within two chars; treat `'x'` and escapes as chars.
                        let is_char = (i + 2 < b.len() && b[i + 2] == b'\'')
                            || (i + 1 < b.len() && b[i + 1] == b'\\');
                        if is_char {
                            kept.push_str("' '");
                            state = St::Char;
                            i += 1;
                            continue;
                        }
                    }
                    kept.push(b[i] as char);
                    i += 1;
                }
                St::Block(depth) => {
                    if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                        state = if depth == 1 {
                            St::Code
                        } else {
                            St::Block(depth - 1)
                        };
                        i += 2;
                    } else if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                        state = St::Block(depth + 1);
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                St::Str => {
                    if b[i] == b'\\' {
                        i += 2;
                    } else if b[i] == b'"' {
                        state = St::Code;
                        i += 1;
                    } else {
                        i += 1;
                    }
                }
                St::RawStr(hashes) => {
                    if b[i] == b'"' {
                        let mut j = i + 1;
                        let mut h = 0;
                        while j < b.len() && b[j] == b'#' && h < hashes {
                            h += 1;
                            j += 1;
                        }
                        if h == hashes {
                            state = St::Code;
                            i = j;
                            continue;
                        }
                    }
                    i += 1;
                }
                St::Char => {
                    if b[i] == b'\\' {
                        i += 2;
                    } else if b[i] == b'\'' {
                        state = St::Code;
                        i += 1;
                    } else {
                        i += 1;
                    }
                }
            }
        }
        out.push(kept);
        // A string/char cannot span lines (raw strings and block comments
        // can); reset the simple states at end of line.
        if state == St::Str || state == St::Char {
            state = St::Code;
        }
    }
    out
}

/// Finds the test-module cut: the first *top-level* `#[cfg(test)]` item
/// (brace depth 0 in the code view), the repository's end-of-file
/// test-module convention. A `#[cfg(test)]` on a statement *inside* a
/// function body no longer truncates the file (it used to miscount braces
/// for everything after it).
fn test_module_cut(code: &[String]) -> usize {
    let mut depth: i64 = 0;
    for (idx, cl) in code.iter().enumerate() {
        if depth == 0 && cl.trim_start().starts_with("#[cfg(test)]") {
            return idx;
        }
        for ch in cl.chars() {
            match ch {
                '{' => depth += 1,
                '}' => depth -= 1,
                _ => {}
            }
        }
    }
    code.len()
}

/// Extracts the identifier after `fn ` on a code line, if any.
fn fn_name(code_line: &str) -> Option<String> {
    let at = find_token(code_line, "fn")?;
    let rest = &code_line[at + 2..];
    let rest = rest.trim_start();
    let end = rest
        .find(|c: char| !(c.is_alphanumeric() || c == '_'))
        .unwrap_or(rest.len());
    if end == 0 {
        return None;
    }
    Some(rest[..end].to_string())
}

/// Finds `token` in `line` at identifier boundaries (so `fn` does not match
/// inside `fn_name` or `dyn_fn`).
pub fn find_token(line: &str, token: &str) -> Option<usize> {
    let b = line.as_bytes();
    let mut from = 0;
    while let Some(rel) = line[from..].find(token) {
        let at = from + rel;
        let before_ok = at == 0 || {
            let c = b[at - 1];
            !(c.is_ascii_alphanumeric() || c == b'_')
        };
        let after = at + token.len();
        let after_ok = after >= b.len() || {
            let c = b[after];
            !(c.is_ascii_alphanumeric() || c == b'_')
        };
        if before_ok && after_ok {
            return Some(at);
        }
        from = at + 1;
    }
    None
}

/// Scans one source text into a [`ScannedFile`].
pub fn scan_text(rel_path: &str, text: &str) -> ScannedFile {
    let all_raw: Vec<String> = text.lines().map(str::to_string).collect();
    let mut all_code = strip_comments_and_strings(text);
    all_code.resize(all_raw.len(), String::new());
    // The cut is computed on the *stripped* view, so a `#[cfg(test)]`
    // inside a comment or string does not truncate, and only a top-level
    // one (depth 0) does.
    let cut = test_module_cut(&all_code);
    let raw: Vec<String> = all_raw[..cut].to_vec();
    let code: Vec<String> = all_code[..cut].to_vec();

    // Recover fn spans by brace counting from each `fn` keyword.
    let mut fns = Vec::new();
    let mut depth: i64 = 0;
    let mut open: Vec<(String, usize, bool, bool, bool, i64)> = Vec::new();
    let mut pending_trusted = false;
    for (idx, cl) in code.iter().enumerate() {
        let raw_line = raw[idx].trim();
        if (raw_line.starts_with("//") || raw_line.starts_with("/*") || raw_line.starts_with('*'))
            && raw_line.contains("TRUSTED:")
        {
            pending_trusted = true;
        }
        if let Some(name) = fn_name(cl) {
            // The signature may span lines up to the opening brace; a
            // semicolon first means a trait method declaration (no body).
            let mut sig = String::new();
            for s in code.iter().skip(idx) {
                sig.push_str(s);
                sig.push(' ');
                if s.contains('{') || s.contains(';') {
                    break;
                }
            }
            if !sig[..sig.find('{').unwrap_or(sig.len())].contains(';') {
                let is_pub = cl.trim_start().starts_with("pub");
                let mut_self = sig[..sig.find('{').unwrap_or(sig.len())].contains("&mut self");
                open.push((name, idx + 1, is_pub, mut_self, pending_trusted, depth));
            }
            pending_trusted = false;
        }
        for ch in cl.chars() {
            match ch {
                '{' => depth += 1,
                '}' => {
                    depth -= 1;
                    // Any fn whose body opened above this depth closes here.
                    while let Some(&(_, _, _, _, _, d)) = open.last() {
                        if depth <= d {
                            let (name, start, is_pub, takes_mut_self, trusted, _) =
                                open.pop().unwrap();
                            let loc = raw[start - 1..=idx]
                                .iter()
                                .filter(|l| !l.trim().is_empty())
                                .count();
                            fns.push(FnSpan {
                                name,
                                start,
                                end: idx + 1,
                                is_pub,
                                takes_mut_self,
                                trusted,
                                loc,
                            });
                        } else {
                            break;
                        }
                    }
                }
                _ => {}
            }
        }
    }
    fns.sort_by_key(|f| f.start);
    ScannedFile {
        rel_path: rel_path.to_string(),
        raw,
        code,
        fns,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
//! Docs mentioning unsafe and write_rbar( in prose.

/// More docs.
pub fn outer(a: usize) -> usize {
    let s = "unsafe in a string";
    let _ = s;
    inner(a)
}

// TRUSTED: hardware commit path.
pub(crate) fn trusted_commit(&mut self) {
    self.x = 1;
}

fn inner(a: usize) -> usize {
    a + 1
}

#[cfg(test)]
mod tests {
    fn invisible() {}
}
"#;

    #[test]
    fn strings_and_comments_are_stripped() {
        let f = scan_text("s.rs", SAMPLE);
        let joined = f.code.join("\n");
        assert!(!joined.contains("unsafe"), "string content must be gone");
        assert!(!joined.contains("write_rbar"), "doc content must be gone");
        assert!(joined.contains("let s = \"\""));
    }

    #[test]
    fn fn_spans_are_recovered_with_attributes() {
        let f = scan_text("s.rs", SAMPLE);
        let names: Vec<&str> = f.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["outer", "trusted_commit", "inner"]);
        let outer = &f.fns[0];
        assert!(outer.is_pub && !outer.takes_mut_self && !outer.trusted);
        let trusted = &f.fns[1];
        assert!(trusted.is_pub && trusted.takes_mut_self && trusted.trusted);
        assert!(!f.fns[2].is_pub);
        assert!(outer.end > outer.start);
    }

    #[test]
    fn test_modules_are_excluded() {
        let f = scan_text("s.rs", SAMPLE);
        assert!(f.fns.iter().all(|f| f.name != "invisible"));
        assert!(!f.raw.join("\n").contains("invisible"));
    }

    #[test]
    fn block_comments_span_lines() {
        let f = scan_text("s.rs", "/* a\nunsafe\n*/ fn ok() {}\n");
        assert!(!f.code.join("\n").contains("unsafe"));
        assert_eq!(f.fns.len(), 1);
    }

    #[test]
    fn raw_strings_are_stripped() {
        let code = strip_comments_and_strings("let x = r#\"unsafe \"# ; fn f() {}");
        assert!(!code[0].contains("unsafe"));
        assert!(code[0].contains("fn f()"));
    }

    #[test]
    fn find_token_respects_identifier_boundaries() {
        assert!(find_token("pub fn alloc()", "fn").is_some());
        assert!(find_token("fn_name()", "fn").is_none());
        assert!(find_token("dyn_fn()", "fn").is_none());
        assert_eq!(find_token("unsafe {", "unsafe"), Some(0));
    }

    #[test]
    fn trait_method_declarations_have_no_span() {
        let f = scan_text("s.rs", "trait T {\n    fn decl(&self) -> usize;\n}\n");
        assert!(f.fns.is_empty(), "{:?}", f.fns);
    }

    #[test]
    fn char_literals_do_not_open_strings() {
        let code = strip_comments_and_strings("let c = '\"'; let d = unsafe_marker;");
        assert!(code[0].contains("unsafe_marker"));
    }

    // --- Scanner robustness regressions (incremental-verification PR) ---

    #[test]
    fn multiline_raw_strings_with_braces_do_not_miscount() {
        // The raw string spans three lines and contains unbalanced braces
        // and an `unsafe`; the fn after it must still be recovered.
        let src = "pub fn doc() -> &'static str {\n    r#\"{ { unsafe\n}} } \"inner\"\n\"#\n}\n\nfn after() {}\n";
        let f = scan_text("s.rs", src);
        let names: Vec<&str> = f.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["doc", "after"], "{:?}", f.fns);
        assert!(!f.code.join("\n").contains("unsafe"));
    }

    #[test]
    fn byte_and_c_raw_strings_are_recognized() {
        // `br#"..."#` used to miss the raw-string fast path (the `b`
        // prefix made the `r` look like part of an identifier), letting
        // the inner quote open a plain string and leak `{ unsafe` as code.
        let code = strip_comments_and_strings("let x = br#\"say \"hi\" { unsafe\"#; fn f() {}");
        assert_eq!(code[0], "let x = \"\"; fn f() {}", "{code:?}");
        let code = strip_comments_and_strings("let y = b\"{\"; let z = cr\"}\"; fn g() {}");
        // The `b` prefix of a plain byte string stays as code (harmless);
        // what matters is the literal content (the braces) is gone.
        assert_eq!(
            code[0], "let y = b\"\"; let z = \"\"; fn g() {}",
            "{code:?}"
        );
        // A raw *identifier* (`r#fn`) is not a string start.
        let code = strip_comments_and_strings("let r#fn = 1; other(r#fn);");
        assert!(code[0].contains("other"));
    }

    #[test]
    fn nested_block_comments_with_braces_do_not_miscount() {
        let src = "/* outer { /* inner } unsafe */ still out { */\npub fn live() {}\n";
        let f = scan_text("s.rs", src);
        assert_eq!(f.fns.len(), 1, "{:?}", f.fns);
        assert_eq!(f.fns[0].name, "live");
        // The whole first line is comment: no brace or token survives it.
        assert_eq!(f.code[0].trim(), "");
    }

    #[test]
    fn cfg_test_inside_a_body_does_not_truncate() {
        // A `#[cfg(test)]`-gated *statement* used to cut the file mid-fn,
        // losing the enclosing brace and every fn after it.
        let src = "pub fn gated() {\n    #[cfg(test)]\n    let probe = 1;\n    work();\n}\n\npub fn after() {}\n\n#[cfg(test)]\nmod tests {\n    fn invisible() {}\n}\n";
        let f = scan_text("s.rs", src);
        let names: Vec<&str> = f.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["gated", "after"], "{:?}", f.fns);
        assert_eq!(f.fns[0].end, 5);
    }

    #[test]
    fn cfg_attr_gated_fns_are_recovered() {
        let src = "#[cfg_attr(feature = \"x{y\", inline)]\npub fn attributed() {\n    work();\n}\n\n#[cfg_attr(test, allow(dead_code))]\nfn also_live() {}\n";
        let f = scan_text("s.rs", src);
        let names: Vec<&str> = f.fns.iter().map(|f| f.name.as_str()).collect();
        // `#[cfg_attr(test, ...)]` is not `#[cfg(test)]`: nothing truncates,
        // and the `{` inside the attribute's string literal does not count.
        assert_eq!(names, vec!["attributed", "also_live"], "{:?}", f.fns);
        assert_eq!(f.fns[0].start, 2);
        assert_eq!(f.fns[0].end, 4);
    }

    #[test]
    fn cfg_test_in_comment_or_string_does_not_truncate() {
        let src = "// #[cfg(test)] in a comment\npub fn a() {\n    let s = \"#[cfg(test)]\";\n    let _ = s;\n}\n";
        let f = scan_text("s.rs", src);
        assert_eq!(f.fns.len(), 1);
        assert_eq!(f.fns[0].end, 5);
    }

    // --- Hashing and the source index ---

    #[test]
    fn fn_hashes_change_with_content_and_only_then() {
        let a = scan_text(
            "s.rs",
            "fn f() {\n    one();\n}\n\nfn g() {\n    two();\n}\n",
        );
        let b = scan_text(
            "s.rs",
            "fn f() {\n    one();\n}\n\nfn g() {\n    CHANGED();\n}\n",
        );
        assert_eq!(a.fn_content_hash(&a.fns[0]), b.fn_content_hash(&b.fns[0]));
        assert_ne!(a.fn_content_hash(&a.fns[1]), b.fn_content_hash(&b.fns[1]));
        assert_ne!(a.content_hash(), b.content_hash());
    }

    #[test]
    fn test_module_edits_do_not_change_the_content_hash() {
        let a = scan_text(
            "s.rs",
            "fn f() {}\n\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\n",
        );
        let b = scan_text(
            "s.rs",
            "fn f() {}\n\n#[cfg(test)]\nmod tests {\n    fn t() { changed(); }\n}\n",
        );
        assert_eq!(a.content_hash(), b.content_hash());
    }

    #[test]
    fn source_index_resolves_obligation_name_forms() {
        let f = scan_text(
            "crates/x/src/lib.rs",
            "pub fn encode_permissions(x: u8) -> u8 { x }\nimpl T {\n    pub fn method_name(&self) {}\n}\n",
        );
        let idx = SourceIndex::from_files(&[f]);
        assert!(idx.is_anchored("encode_permissions(arm)"));
        assert!(idx.is_anchored("Type::method_name"));
        assert!(!idx.is_anchored("no_such_fn_anywhere"));
        assert_eq!(
            idx.anchor_hash("encode_permissions(arm)"),
            idx.fn_hash("encode_permissions").unwrap()
        );
        // Unresolvable names anchor to the workspace hash.
        assert_eq!(idx.anchor_hash("no_such_fn_anywhere"), idx.workspace_hash());
    }

    #[test]
    fn same_named_fns_fold_into_one_combined_hash() {
        let a = scan_text("crates/a/src/lib.rs", "pub fn new() -> A {\n    A\n}\n");
        let b = scan_text("crates/b/src/lib.rs", "pub fn new() -> B {\n    B\n}\n");
        let idx = SourceIndex::from_files(&[a.clone(), b.clone()]);
        let b2 = scan_text("crates/b/src/lib.rs", "pub fn new() -> B {\n    B2\n}\n");
        let idx2 = SourceIndex::from_files(&[a, b2]);
        // Changing either definition changes the combined hash.
        assert_ne!(idx.fn_hash("new"), idx2.fn_hash("new"));
        assert_ne!(idx.workspace_hash(), idx2.workspace_hash());
    }

    #[test]
    fn fnv_mixing_is_length_prefixed() {
        let mut a = Fnv::new();
        a.mix_str("ab");
        a.mix_str("c");
        let mut b = Fnv::new();
        b.mix_str("a");
        b.mix_str("bc");
        assert_ne!(a.finish(), b.finish());
        assert_eq!(fnv1a(b"abc"), fnv1a(b"abc"));
        assert_ne!(fnv1a(b"abc"), fnv1a(b"abd"));
    }
}
