//! The single simulation-context thread-local — the hot-path fast lane.
//!
//! Before the throughput-engine PR, one simulated register write paid up
//! to five separate thread-local lookups: the trace `ENABLED` flag, the
//! trace ring cell, the cycle counter, the cycle-accounting flag and the
//! contract-mode flag — each its own `thread_local!` static with its own
//! initialization check. [`SimContext`] consolidates every per-thread
//! simulator *flag and counter* into **one** thread-local struct, so each
//! event on the hot path (`tt_hw::trace::record`, `tt_hw::cycles::charge`,
//! a `requires!` check) performs a single TLS access for its check, and
//! every disabled path is a single flag load off that one pointer.
//!
//! The struct is deliberately `Copy`-scalars-only (`Cell`s, no heap
//! buffers): a thread-local whose payload needs `Drop` glue loses the
//! const-initialized fast path — every access then goes through the
//! destructor-registration state machine, which measurably doubles the
//! cost of a disabled-path flag load. The *buffers* those flags guard
//! (the trace ring, the §6.2 method records, the violation log) therefore
//! live in companion thread-locals owned by their layers and are touched
//! only when the corresponding flag says the feature is on, where the
//! real work (a ring push, a `Vec` push) dwarfs the second lookup.
//!
//! This crate sits at the bottom of the workspace dependency graph, so
//! the context lives here: contracts keep [`SimContext::mode`] in it,
//! `tt_hw::cycles` the counter and its flags, `tt_hw::trace` its enabled
//! flag and current pid.
//!
//! Everything stays thread-local by design: the work-stealing pool in
//! `tt_kernel::pool` relies on worker runs being bit-identical to serial
//! runs precisely because no simulator state is shared between threads.

use std::cell::Cell;

use crate::Mode;

/// Sentinel pid meaning "no process context" (mirrors
/// `tt_hw::trace::NO_PID`, which this crate cannot reference).
pub const NO_PID: u32 = u32::MAX;

/// Sentinel for [`SimContext::injection_target`] meaning "no injection
/// plan armed". Distinct from [`NO_PID`] *and* from every real pid
/// (small process indices), so a disarmed engine's fast-path compare
/// `current_pid == injection_target` is false in every context.
pub const NO_TARGET: u32 = u32::MAX - 1;

/// All per-thread simulator flags and counters, one field per former
/// `thread_local!` static. Plain-`Copy` cells only — see the module docs
/// for why no buffer lives here.
pub struct SimContext {
    /// Contract-checking mode (`requires!`/`ensures!`/`invariant!`).
    pub mode: Cell<Mode>,
    /// The deterministic cycle counter (`tt_hw::cycles`).
    pub cycles: Cell<u64>,
    /// Whether cycle accounting is on (default `true`).
    pub cycles_enabled: Cell<bool>,
    /// Whether §6.2 per-method cycle recording is on (default `false`).
    pub recording: Cell<bool>,
    /// Whether event tracing is on (default `false`).
    pub trace_enabled: Cell<bool>,
    /// Process context attributed to low-level trace events.
    pub current_pid: Cell<u32>,
    /// Mirror of the armed fault-injection plan's target pid
    /// ([`NO_TARGET`] when disarmed), kept in sync by
    /// `tt_hw::injection::{arm, disarm}`. Lets every injection hook
    /// answer "not the victim's context" with the same single TLS access
    /// that already holds `current_pid`, instead of touching the
    /// engine's own (buffer-carrying) thread-local.
    pub injection_target: Cell<u32>,
    /// Whether an interrupt schedule is armed on this thread, kept in
    /// sync by `tt_hw::sched::{arm, disarm}`. Every arrival-point hook in
    /// the kernel answers "no schedule, nothing to do" off this one flag
    /// before touching the engine's own (buffer-carrying) thread-local —
    /// the same fast-path discipline as [`Self::injection_target`].
    pub sched_armed: Cell<bool>,
}

impl SimContext {
    /// Resets the fields that carry *per-run* state — the cycle counter,
    /// the §6.2 recording flag and the current-pid attribution — to their
    /// boot values. The fields owned by longer-lived scopes (`mode`,
    /// which `with_mode` saves and restores; `cycles_enabled` and
    /// `trace_enabled`, which benchmark harnesses toggle around whole
    /// suites) are deliberately left alone.
    ///
    /// `tt_kernel::snapshot` calls this on restore so a work unit that
    /// leaked a flag (a recording span that never drained, a stale pid
    /// from a panicked run) cannot carry it into the next run on the
    /// same pool worker.
    pub fn reset_run_state(&self) {
        self.cycles.set(0);
        self.recording.set(false);
        self.current_pid.set(NO_PID);
    }

    const fn new() -> Self {
        Self {
            mode: Cell::new(Mode::Enforce),
            cycles: Cell::new(0),
            cycles_enabled: Cell::new(true),
            recording: Cell::new(false),
            trace_enabled: Cell::new(false),
            current_pid: Cell::new(NO_PID),
            injection_target: Cell::new(NO_TARGET),
            sched_armed: Cell::new(false),
        }
    }
}

thread_local! {
    static CTX: SimContext = const { SimContext::new() };
}

/// Runs `f` with this thread's [`SimContext`] — the one TLS access every
/// hot-path helper makes.
#[inline]
pub fn with<R>(f: impl FnOnce(&SimContext) -> R) -> R {
    CTX.with(f)
}

/// [`SimContext::reset_run_state`] on this thread's context.
pub fn reset_run_state() {
    with(SimContext::reset_run_state);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_former_statics() {
        with(|c| {
            assert_eq!(c.mode.get(), Mode::Enforce);
            assert_eq!(c.cycles.get(), 0);
            assert!(c.cycles_enabled.get());
            assert!(!c.recording.get());
            assert!(!c.trace_enabled.get());
            assert_eq!(c.current_pid.get(), NO_PID);
            assert_eq!(c.injection_target.get(), NO_TARGET);
            assert!(!c.sched_armed.get());
        });
    }

    #[test]
    fn reset_run_state_clears_only_per_run_fields() {
        with(|c| {
            c.cycles.set(123);
            c.recording.set(true);
            c.current_pid.set(4);
            c.trace_enabled.set(true);
        });
        reset_run_state();
        with(|c| {
            assert_eq!(c.cycles.get(), 0);
            assert!(!c.recording.get());
            assert_eq!(c.current_pid.get(), NO_PID);
            // Owned by the tracing layer, not per-run state.
            assert!(c.trace_enabled.get());
            c.trace_enabled.set(false);
        });
    }

    #[test]
    fn context_is_thread_local() {
        with(|c| c.cycles.set(7));
        std::thread::spawn(|| {
            with(|c| {
                assert_eq!(c.cycles.get(), 0, "fresh thread, fresh context");
                c.cycles.set(99);
            });
        })
        .join()
        .unwrap();
        with(|c| {
            assert_eq!(c.cycles.get(), 7);
            c.cycles.set(0);
        });
    }
}
