//! The persistent verdict cache: incremental verification's on-disk state.
//!
//! Flux (and any SMT-backed checker) stays affordable on large codebases by
//! caching query results, so an unchanged function is never re-solved. This
//! module reproduces that economics for the obligation engine: a small
//! versioned binary file (by default `ci/verify_cache.bin`, never
//! committed) maps `(obligation key, fn content hash, obligation-domain
//! hash)` to a verified verdict, all under a whole-cache *config hash*
//! covering toolchain, schema and effort parameters.
//!
//! The format follows the corpus-file discipline from `tt_kernel::corpus`:
//! fixed-width little-endian records behind a magic/version header, with
//! decode-side validation of every field. On top of that, the whole file
//! carries an FNV-1a checksum (computed with the checksum field zeroed), so
//! *any* single-bit corruption — header or records — is detected and the
//! engine falls back to a full cold run. A corrupt cache is never partially
//! reused.
//!
//! ## Staleness model
//!
//! A cached verdict is only returned when all three hashes match:
//!
//! * **key** — which obligation (kind tag + component + function name);
//! * **`fn_hash`** — the content hash of the function's source span (via
//!   [`crate::span::SourceIndex`]), so any edit to the function body or its
//!   contract sites invalidates;
//! * **`domain_hash`** — the obligation's discharge domain (spec identity:
//!   kind, trusted flag, effort densities, allowlist text for audit
//!   passes), so a changed spec invalidates even with identical code.
//!
//! The file-level config hash additionally covers compiler version, cache
//! schema and build profile: a toolchain bump is a cold run. Only
//! *verified* (or clean, for audit passes) verdicts are ever stored —
//! refutations and findings are always re-discharged so a failure can never
//! be masked by a stale cache.

use std::collections::BTreeMap;
use std::fmt;
use std::fs;
use std::io;
use std::path::Path;

use crate::span::{fnv1a, Fnv};

/// File magic: "TTVC" (TickTock Verdict Cache).
pub const MAGIC: [u8; 4] = *b"TTVC";
/// Format version; bump on any layout change.
pub const VERSION: u16 = 1;
/// Fixed header length in bytes.
pub const HEADER_LEN: usize = 40;
/// Fixed record length in bytes.
pub const RECORD_LEN: usize = 48;

/// Valid bits in a record's flags byte.
const FLAG_VERIFIED: u8 = 0b01;
const FLAG_TRUSTED: u8 = 0b10;
const FLAG_MASK: u8 = FLAG_VERIFIED | FLAG_TRUSTED;
/// Valid kind tags are `0..KIND_LIMIT` (contract kinds + audit passes).
const KIND_LIMIT: u8 = 8;

/// Why a cache file was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheError {
    /// The file is shorter than the fixed header.
    Truncated,
    /// The magic bytes are wrong — not a verdict cache.
    BadMagic,
    /// The format version is not [`VERSION`].
    BadVersion(u16),
    /// The byte length after the header is not a multiple of [`RECORD_LEN`],
    /// or the header's record count disagrees with the actual length.
    BadLength,
    /// The whole-file checksum does not match: the file was corrupted.
    BadChecksum,
    /// A record carries invalid flag/kind/reserved bytes.
    BadRecord,
}

impl fmt::Display for CacheError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CacheError::Truncated => write!(f, "cache file truncated"),
            CacheError::BadMagic => write!(f, "bad cache magic"),
            CacheError::BadVersion(v) => write!(f, "unsupported cache version {v}"),
            CacheError::BadLength => write!(f, "cache length inconsistent"),
            CacheError::BadChecksum => write!(f, "cache checksum mismatch"),
            CacheError::BadRecord => write!(f, "cache record invalid"),
        }
    }
}

impl std::error::Error for CacheError {}

/// How a cache load resolved.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LoadOutcome {
    /// The file was present, valid, and matched the config hash.
    Warm,
    /// No cache file existed: a first (cold) run.
    NoFile,
    /// The file was valid but written under a different toolchain/config
    /// hash; its verdicts were discarded.
    ConfigChanged,
    /// The file failed validation; its verdicts were discarded.
    Corrupt(CacheError),
}

impl LoadOutcome {
    /// Whether the load produced any reusable verdicts.
    pub fn is_warm(&self) -> bool {
        matches!(self, LoadOutcome::Warm)
    }
}

/// One cached verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Verdict {
    /// Hash of the obligation identity (kind tag, component, function).
    pub key_hash: u64,
    /// Content hash of the function span(s) the verdict covers.
    pub fn_hash: u64,
    /// Hash of the obligation's discharge domain (the spec).
    pub domain_hash: u64,
    /// Cases discharged when the verdict was produced.
    pub cases: u64,
    /// Wall time of the original discharge, in nanoseconds.
    pub duration_ns: u64,
    /// Whether the obligation was trusted (axiomatized) rather than checked.
    pub trusted: bool,
    /// The kind tag (a [`crate::ContractKind`] ordinal or audit-pass tag).
    pub kind: u8,
}

impl Verdict {
    /// Encodes the verdict as one fixed-width record.
    pub fn encode(&self) -> [u8; RECORD_LEN] {
        let mut b = [0u8; RECORD_LEN];
        b[0..8].copy_from_slice(&self.key_hash.to_le_bytes());
        b[8..16].copy_from_slice(&self.fn_hash.to_le_bytes());
        b[16..24].copy_from_slice(&self.domain_hash.to_le_bytes());
        b[24..32].copy_from_slice(&self.cases.to_le_bytes());
        b[32..40].copy_from_slice(&self.duration_ns.to_le_bytes());
        b[40] = FLAG_VERIFIED | if self.trusted { FLAG_TRUSTED } else { 0 };
        b[41] = self.kind;
        // b[42..48] reserved, must be zero.
        b
    }

    /// Decodes one record, validating flags, kind and reserved bytes.
    pub fn decode(b: &[u8; RECORD_LEN]) -> Result<Self, CacheError> {
        let flags = b[40];
        if flags & !FLAG_MASK != 0 || flags & FLAG_VERIFIED == 0 {
            return Err(CacheError::BadRecord);
        }
        let kind = b[41];
        if kind >= KIND_LIMIT || b[42..48].iter().any(|&x| x != 0) {
            return Err(CacheError::BadRecord);
        }
        let u64_at = |at: usize| u64::from_le_bytes(b[at..at + 8].try_into().unwrap());
        Ok(Verdict {
            key_hash: u64_at(0),
            fn_hash: u64_at(8),
            domain_hash: u64_at(16),
            cases: u64_at(24),
            duration_ns: u64_at(32),
            trusted: flags & FLAG_TRUSTED != 0,
            kind,
        })
    }
}

/// Hashes an obligation identity into a record key.
pub fn verdict_key(kind_tag: u8, component: &str, function: &str) -> u64 {
    let mut h = Fnv::new();
    h.mix_u64(kind_tag as u64);
    h.mix_str(component);
    h.mix_str(function);
    h.finish()
}

/// The in-memory verdict cache, with load/save and hit accounting.
#[derive(Debug, Clone)]
pub struct VerdictCache {
    config_hash: u64,
    cold_wall_ns: u64,
    records: BTreeMap<u64, Verdict>,
    hits: u64,
    misses: u64,
}

impl VerdictCache {
    /// An empty (cold) cache under the given config hash.
    pub fn new(config_hash: u64) -> Self {
        Self {
            config_hash,
            cold_wall_ns: 0,
            records: BTreeMap::new(),
            hits: 0,
            misses: 0,
        }
    }

    /// Loads a cache file, falling back to an empty cold cache when the
    /// file is missing, corrupt, or written under a different config hash.
    /// The outcome says which; callers warn on [`LoadOutcome::Corrupt`].
    /// Corruption never yields partial reuse: every record is discarded.
    pub fn load_or_cold(path: &Path, config_hash: u64) -> (Self, LoadOutcome) {
        let bytes = match fs::read(path) {
            Ok(b) => b,
            Err(e) if e.kind() == io::ErrorKind::NotFound => {
                return (Self::new(config_hash), LoadOutcome::NoFile)
            }
            // Unreadable is indistinguishable from corrupt for our purposes.
            Err(_) => {
                return (
                    Self::new(config_hash),
                    LoadOutcome::Corrupt(CacheError::Truncated),
                )
            }
        };
        match Self::decode(&bytes) {
            Ok(cache) if cache.config_hash == config_hash => (cache, LoadOutcome::Warm),
            Ok(_) => (Self::new(config_hash), LoadOutcome::ConfigChanged),
            Err(e) => (Self::new(config_hash), LoadOutcome::Corrupt(e)),
        }
    }

    /// Serializes the cache (header, records, then the checksum patched
    /// into the header).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(HEADER_LEN + self.records.len() * RECORD_LEN);
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(&[0u8; 2]); // reserved
        out.extend_from_slice(&self.config_hash.to_le_bytes());
        out.extend_from_slice(&self.cold_wall_ns.to_le_bytes());
        out.extend_from_slice(&(self.records.len() as u64).to_le_bytes());
        out.extend_from_slice(&[0u8; 8]); // checksum slot, zeroed for hashing
        for v in self.records.values() {
            out.extend_from_slice(&v.encode());
        }
        let checksum = fnv1a(&out);
        out[32..40].copy_from_slice(&checksum.to_le_bytes());
        out
    }

    /// Decodes and fully validates a cache file image.
    pub fn decode(bytes: &[u8]) -> Result<Self, CacheError> {
        if bytes.len() < HEADER_LEN {
            return Err(CacheError::Truncated);
        }
        if bytes[0..4] != MAGIC {
            return Err(CacheError::BadMagic);
        }
        let version = u16::from_le_bytes(bytes[4..6].try_into().unwrap());
        if version != VERSION {
            return Err(CacheError::BadVersion(version));
        }
        if bytes[6..8] != [0, 0] {
            return Err(CacheError::BadRecord);
        }
        let body = bytes.len() - HEADER_LEN;
        if !body.is_multiple_of(RECORD_LEN) {
            return Err(CacheError::BadLength);
        }
        let count = u64::from_le_bytes(bytes[24..32].try_into().unwrap());
        if count != (body / RECORD_LEN) as u64 {
            return Err(CacheError::BadLength);
        }
        let stored_checksum = u64::from_le_bytes(bytes[32..40].try_into().unwrap());
        let mut image = bytes.to_vec();
        image[32..40].fill(0);
        if fnv1a(&image) != stored_checksum {
            return Err(CacheError::BadChecksum);
        }
        let config_hash = u64::from_le_bytes(bytes[8..16].try_into().unwrap());
        let cold_wall_ns = u64::from_le_bytes(bytes[16..24].try_into().unwrap());
        let mut records = BTreeMap::new();
        for chunk in bytes[HEADER_LEN..].chunks_exact(RECORD_LEN) {
            let rec: &[u8; RECORD_LEN] = chunk.try_into().unwrap();
            let v = Verdict::decode(rec)?;
            records.insert(v.key_hash, v);
        }
        Ok(Self {
            config_hash,
            cold_wall_ns,
            records,
            hits: 0,
            misses: 0,
        })
    }

    /// Writes the cache to `path` (single buffered write, parent dirs
    /// assumed to exist — `ci/` is committed).
    pub fn save(&self, path: &Path) -> io::Result<()> {
        fs::write(path, self.encode())
    }

    /// Looks up a verdict; a hit requires the key, the function content
    /// hash *and* the domain hash to all match. Mismatches count as misses
    /// (the stale record will be overwritten by the fresh `store`).
    pub fn lookup(&mut self, key_hash: u64, fn_hash: u64, domain_hash: u64) -> Option<Verdict> {
        match self.records.get(&key_hash) {
            Some(v) if v.fn_hash == fn_hash && v.domain_hash == domain_hash => {
                self.hits += 1;
                Some(*v)
            }
            _ => {
                self.misses += 1;
                None
            }
        }
    }

    /// Stores (or replaces) a verified verdict.
    pub fn store(&mut self, verdict: Verdict) {
        self.records.insert(verdict.key_hash, verdict);
    }

    /// Cache hits since load.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cache misses since load.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Hit rate over all lookups since load (0.0 when none).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Number of stored verdicts.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the cache holds no verdicts.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The config hash this cache was created under.
    pub fn config_hash(&self) -> u64 {
        self.config_hash
    }

    /// The recorded cold-run wall time (ns); 0 until a cold run stores it.
    pub fn cold_wall_ns(&self) -> u64 {
        self.cold_wall_ns
    }

    /// Records the cold-run wall time used by warm-run speedup gates.
    pub fn set_cold_wall_ns(&mut self, ns: u64) {
        self.cold_wall_ns = ns;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> VerdictCache {
        let mut c = VerdictCache::new(0xC0FF_EE00_1234_5678);
        c.set_cold_wall_ns(1_960_000_000);
        for i in 0..5u64 {
            c.store(Verdict {
                key_hash: verdict_key(1, "Kernel (Process)", &format!("fn_{i}")),
                fn_hash: 0x1111 * (i + 1),
                domain_hash: 0x2222 * (i + 1),
                cases: 100 + i,
                duration_ns: 1_000 * (i + 1),
                trusted: i % 2 == 0,
                kind: (i % 5) as u8,
            });
        }
        c
    }

    #[test]
    fn encode_decode_round_trips() {
        let c = sample();
        let bytes = c.encode();
        assert_eq!(bytes.len(), HEADER_LEN + 5 * RECORD_LEN);
        let d = VerdictCache::decode(&bytes).expect("valid image");
        assert_eq!(d.config_hash(), c.config_hash());
        assert_eq!(d.cold_wall_ns(), c.cold_wall_ns());
        assert_eq!(d.len(), 5);
        for v in c.records.values() {
            assert_eq!(d.records.get(&v.key_hash), Some(v));
        }
    }

    #[test]
    fn lookup_requires_all_three_hashes() {
        let mut c = sample();
        let key = verdict_key(1, "Kernel (Process)", "fn_0");
        assert!(c.lookup(key, 0x1111, 0x2222).is_some());
        assert!(c.lookup(key, 0xdead, 0x2222).is_none(), "fn change = miss");
        assert!(
            c.lookup(key, 0x1111, 0xdead).is_none(),
            "spec change = miss"
        );
        assert!(c.lookup(0xdead, 0x1111, 0x2222).is_none(), "unknown key");
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 3);
        assert!((c.hit_rate() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn every_single_bit_flip_is_detected() {
        let bytes = sample().encode();
        for byte in 0..bytes.len() {
            for bit in 0..8 {
                let mut garbled = bytes.clone();
                garbled[byte] ^= 1 << bit;
                assert!(
                    VerdictCache::decode(&garbled).is_err(),
                    "bit flip at byte {byte} bit {bit} must be detected"
                );
            }
        }
    }

    #[test]
    fn every_truncation_is_detected() {
        let bytes = sample().encode();
        for len in 0..bytes.len() {
            assert!(
                VerdictCache::decode(&bytes[..len]).is_err(),
                "truncation to {len} bytes must be detected"
            );
        }
    }

    #[test]
    fn header_field_errors_are_classified() {
        let bytes = sample().encode();
        let mut bad_magic = bytes.clone();
        bad_magic[0] = b'X';
        assert_eq!(
            VerdictCache::decode(&bad_magic).unwrap_err(),
            CacheError::BadMagic
        );
        let mut bad_version = bytes.clone();
        bad_version[4] = 99;
        // Version is checked before the checksum: an old-format file is
        // reported as such, not as corruption.
        assert_eq!(
            VerdictCache::decode(&bad_version).unwrap_err(),
            CacheError::BadVersion(99)
        );
        assert_eq!(
            VerdictCache::decode(&bytes[..HEADER_LEN - 1]).unwrap_err(),
            CacheError::Truncated
        );
        // Extra trailing bytes: not a record multiple.
        let mut long = bytes.clone();
        long.push(0);
        assert_eq!(
            VerdictCache::decode(&long).unwrap_err(),
            CacheError::BadLength
        );
        // A whole extra zero record: count mismatch.
        let mut extra = bytes.clone();
        extra.extend_from_slice(&[0u8; RECORD_LEN]);
        assert_eq!(
            VerdictCache::decode(&extra).unwrap_err(),
            CacheError::BadLength
        );
    }

    #[test]
    fn load_or_cold_never_partially_reuses() {
        let dir = std::env::temp_dir().join(format!("ttvc-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("verify_cache.bin");
        let config = 0xABCD;

        // Missing file: cold, no error.
        let _ = std::fs::remove_file(&path);
        let (c, outcome) = VerdictCache::load_or_cold(&path, config);
        assert_eq!(outcome, LoadOutcome::NoFile);
        assert!(c.is_empty());

        // Valid file: warm.
        let mut warm = VerdictCache::new(config);
        warm.store(Verdict {
            key_hash: 7,
            fn_hash: 8,
            domain_hash: 9,
            cases: 1,
            duration_ns: 2,
            trusted: false,
            kind: 0,
        });
        warm.save(&path).unwrap();
        let (c, outcome) = VerdictCache::load_or_cold(&path, config);
        assert_eq!(outcome, LoadOutcome::Warm);
        assert_eq!(c.len(), 1);

        // Different config hash: cold, records discarded.
        let (c, outcome) = VerdictCache::load_or_cold(&path, config + 1);
        assert_eq!(outcome, LoadOutcome::ConfigChanged);
        assert!(c.is_empty());

        // Bit-flipped file: corrupt, records discarded, classified error.
        let mut garbled = std::fs::read(&path).unwrap();
        let mid = HEADER_LEN + RECORD_LEN / 2;
        garbled[mid] ^= 0x10;
        std::fs::write(&path, &garbled).unwrap();
        let (c, outcome) = VerdictCache::load_or_cold(&path, config);
        assert!(matches!(outcome, LoadOutcome::Corrupt(_)), "{outcome:?}");
        assert!(c.is_empty(), "corrupt cache must never be partially reused");

        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_dir(&dir);
    }

    #[test]
    fn verdict_record_rejects_invalid_bytes() {
        let v = Verdict {
            key_hash: 1,
            fn_hash: 2,
            domain_hash: 3,
            cases: 4,
            duration_ns: 5,
            trusted: true,
            kind: 4,
        };
        let b = v.encode();
        assert_eq!(Verdict::decode(&b), Ok(v));
        let mut bad = b;
        bad[40] = 0b100; // unknown flag bit
        assert_eq!(Verdict::decode(&bad), Err(CacheError::BadRecord));
        let mut bad = b;
        bad[40] = 0; // verified bit clear
        assert_eq!(Verdict::decode(&bad), Err(CacheError::BadRecord));
        let mut bad = b;
        bad[41] = KIND_LIMIT; // kind out of range
        assert_eq!(Verdict::decode(&bad), Err(CacheError::BadRecord));
        let mut bad = b;
        bad[47] = 1; // reserved byte set
        assert_eq!(Verdict::decode(&bad), Err(CacheError::BadRecord));
    }

    #[test]
    fn empty_cache_round_trips() {
        let c = VerdictCache::new(42);
        let d = VerdictCache::decode(&c.encode()).unwrap();
        assert!(d.is_empty());
        assert_eq!(d.config_hash(), 42);
        assert_eq!(d.hit_rate(), 0.0);
    }
}
