//! Bit-math helpers shared by the allocators and MPU drivers.
//!
//! These mirror Tock's `kernel/src/utilities/math.rs`, plus the predicates
//! the paper writes as Flux refinements (`is_pow2`, alignment facts).

/// Returns `true` if `n` is a power of two, via the classic bithack the paper
/// shows in §5: `v > 0 && v & (v - 1) == 0`.
///
/// # Examples
///
/// ```
/// assert!(tt_contracts::math::is_pow2(32));
/// assert!(!tt_contracts::math::is_pow2(48));
/// assert!(!tt_contracts::math::is_pow2(0));
/// ```
pub const fn is_pow2(n: usize) -> bool {
    n > 0 && n & (n - 1) == 0
}

/// Returns the smallest power of two greater than or equal to `n`.
///
/// Mirrors Tock's `math::closest_power_of_two`. Saturates at the largest
/// representable power of two for inputs above it.
pub const fn closest_power_of_two(n: u32) -> u32 {
    if n == 0 {
        return 1;
    }
    let mut v = n.wrapping_sub(1);
    v |= v >> 1;
    v |= v >> 2;
    v |= v >> 4;
    v |= v >> 8;
    v |= v >> 16;
    v.wrapping_add(1)
}

/// Returns the smallest power of two `>= n`, as a `usize` (32-bit semantics,
/// matching the microcontroller targets the paper verifies).
pub const fn closest_power_of_two_usize(n: usize) -> usize {
    closest_power_of_two(n as u32) as usize
}

/// Returns `floor(log2(n))` for `n > 0`.
pub const fn log_base_two(n: u32) -> u32 {
    if n == 0 {
        0
    } else {
        31 - n.leading_zeros()
    }
}

/// Rounds `addr` up to the next multiple of `align`.
///
/// `align` must be a power of two; this is the alignment idiom used by both
/// MPU drivers. Returns `usize::MAX`-saturated value on overflow.
pub const fn align_up(addr: usize, align: usize) -> usize {
    debug_assert!(is_pow2(align));
    let mask = align - 1;
    match addr.checked_add(mask) {
        Some(v) => v & !mask,
        None => usize::MAX & !mask,
    }
}

/// Rounds `addr` down to the previous multiple of `align` (a power of two).
pub const fn align_down(addr: usize, align: usize) -> usize {
    debug_assert!(is_pow2(align));
    addr & !(align - 1)
}

/// Returns `true` if `addr` is a multiple of `align` (a power of two).
pub const fn is_aligned(addr: usize, align: usize) -> bool {
    debug_assert!(is_pow2(align));
    addr & (align - 1) == 0
}

/// A `usize` statically known to be a power of two.
///
/// This is the reproduction of the paper's Flux-refined sizes: the Cortex-M
/// driver only ever manipulates region sizes through this type, so the
/// "size is a power of two" fact never has to be re-established.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PowerOfTwo(usize);

impl PowerOfTwo {
    /// Creates a `PowerOfTwo` if `n` is indeed a power of two.
    pub const fn new(n: usize) -> Option<Self> {
        if is_pow2(n) {
            Some(Self(n))
        } else {
            None
        }
    }

    /// Creates the smallest power of two `>= n`.
    pub const fn ceil(n: usize) -> Self {
        Self(closest_power_of_two_usize(if n == 0 { 1 } else { n }))
    }

    /// Creates `2^exp`.
    ///
    /// # Panics
    ///
    /// Panics if `exp >= usize::BITS`.
    pub const fn from_exponent(exp: u32) -> Self {
        assert!(exp < usize::BITS);
        Self(1 << exp)
    }

    /// Returns the raw value.
    pub const fn get(self) -> usize {
        self.0
    }

    /// Returns `log2(self)`.
    pub const fn exponent(self) -> u32 {
        self.0.trailing_zeros()
    }

    /// Doubles the value; the adjustment step in Tock's allocator (§3.4).
    ///
    /// # Panics
    ///
    /// Panics on overflow past the top bit.
    pub const fn double(self) -> Self {
        assert!(self.0 <= usize::MAX / 2);
        Self(self.0 * 2)
    }

    /// Halves the value, saturating at 1.
    pub const fn halve(self) -> Self {
        if self.0 == 1 {
            self
        } else {
            Self(self.0 / 2)
        }
    }
}

impl std::fmt::Display for PowerOfTwo {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pow2_predicate_matches_exhaustively() {
        // Exhaustive check against the reference definition over 20 bits.
        for n in 0usize..(1 << 20) {
            let reference = n.is_power_of_two();
            assert_eq!(is_pow2(n), reference, "n = {n}");
        }
    }

    #[test]
    fn closest_power_of_two_is_minimal() {
        for n in 1u32..(1 << 16) {
            let p = closest_power_of_two(n);
            assert!(p.is_power_of_two());
            assert!(p >= n);
            assert!(p / 2 < n, "p = {p} not minimal for n = {n}");
        }
    }

    #[test]
    fn closest_power_of_two_of_zero_is_one() {
        assert_eq!(closest_power_of_two(0), 1);
    }

    #[test]
    fn log_base_two_matches_reference() {
        for n in 1u32..(1 << 16) {
            assert_eq!(log_base_two(n), n.ilog2());
        }
        assert_eq!(log_base_two(0), 0);
    }

    #[test]
    fn align_up_properties() {
        for addr in 0usize..4096 {
            for exp in 0..8u32 {
                let align = 1usize << exp;
                let up = align_up(addr, align);
                assert!(up >= addr);
                assert!(is_aligned(up, align));
                assert!(up - addr < align);
            }
        }
    }

    #[test]
    fn align_down_properties() {
        for addr in 0usize..4096 {
            for exp in 0..8u32 {
                let align = 1usize << exp;
                let down = align_down(addr, align);
                assert!(down <= addr);
                assert!(is_aligned(down, align));
                assert!(addr - down < align);
            }
        }
    }

    #[test]
    fn align_up_saturates_instead_of_overflowing() {
        let v = align_up(usize::MAX - 3, 32);
        assert!(is_aligned(v, 32));
    }

    #[test]
    fn power_of_two_constructors() {
        assert_eq!(PowerOfTwo::new(32).unwrap().get(), 32);
        assert!(PowerOfTwo::new(33).is_none());
        assert!(PowerOfTwo::new(0).is_none());
        assert_eq!(PowerOfTwo::ceil(33).get(), 64);
        assert_eq!(PowerOfTwo::ceil(0).get(), 1);
        assert_eq!(PowerOfTwo::from_exponent(5).get(), 32);
    }

    #[test]
    fn power_of_two_double_halve() {
        let p = PowerOfTwo::new(64).unwrap();
        assert_eq!(p.double().get(), 128);
        assert_eq!(p.halve().get(), 32);
        assert_eq!(PowerOfTwo::new(1).unwrap().halve().get(), 1);
        assert_eq!(p.exponent(), 6);
    }
}
