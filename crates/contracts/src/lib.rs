//! Runtime refinement-contract engine — the reproduction's analogue of Flux.
//!
//! The TickTock paper verifies isolation with [Flux], an SMT-backed refinement
//! type checker for Rust. Flux is an external static tool; this crate
//! reproduces its *role* in the artifact with an executable design:
//!
//! * **Contracts** — [`requires!`], [`ensures!`] and [`invariant!`] attach
//!   preconditions, postconditions and data-structure invariants to real
//!   kernel code. In [`Mode::Enforce`] a violated contract aborts the
//!   offending computation exactly where Flux would have rejected the code.
//! * **Obligations** — each verified function registers the same contract as a
//!   standalone [`obligation::Obligation`]: a closure that *discharges* the
//!   contract over an input [`domain`] (bounded-exhaustive or randomized),
//!   standing in for the SMT search.
//! * **Verifier** — [`verifier::Verifier`] plays the role of `flux` the CLI:
//!   it checks every obligation modularly, times each function, and produces
//!   the per-component statistics of the paper's Figure 12.
//! * **Lemmas** — [`lemmas`] reproduces the paper's trusted Lean lemmas
//!   (§5): facts about powers of two and alignment that SMT solvers choke on,
//!   here discharged by exhaustive structural checking.
//! * **Effort accounting** — [`effort`] scans the repository and produces the
//!   proof-effort table of Figure 10 (source LOC, functions, spec LOC,
//!   trusted subsets).
//!
//! The engine genuinely distinguishes correct from buggy code: pointed at the
//! faithful reimplementation of Tock's original allocator (`tt-legacy`), it
//! rediscovers all the isolation bugs described in §2.2 and §3.4 of the
//! paper.
//!
//! [Flux]: https://flux-rs.github.io/flux/

#![warn(missing_docs)]

pub mod domain;
pub mod effort;
pub mod lemmas;
pub mod math;
pub mod obligation;
pub mod simctx;
pub mod span;
pub mod vcache;
pub mod verifier;

use std::fmt;

/// How contract checks behave at run time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Mode {
    /// Check every contract and panic with [`ContractViolation`] on failure.
    ///
    /// This is the default and corresponds to code that Flux has verified:
    /// a violation is a verification failure, not a recoverable error.
    #[default]
    Enforce,
    /// Check every contract but only record failures in the violation log.
    ///
    /// The verifier harness uses this to *search* for violations without
    /// unwinding, mirroring how Flux reports all errors in one run.
    Observe,
    /// Skip contract checks entirely (used by performance benchmarks to
    /// measure the unverified fast path).
    Off,
}

thread_local! {
    // The violation log is rare-path (a push only on contract failure),
    // so it stays out of the scalar-only `simctx::SimContext` fast lane.
    static VIOLATIONS: std::cell::RefCell<Vec<ContractViolation>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

/// A failed contract: the runtime analogue of a Flux type error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ContractViolation {
    /// Which kind of contract failed.
    pub kind: ContractKind,
    /// The function or type the contract is attached to.
    pub site: &'static str,
    /// The contract expression, as written.
    pub predicate: &'static str,
}

/// The kinds of contract Flux (and this engine) checks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ContractKind {
    /// A `requires` precondition at a call boundary.
    Pre,
    /// An `ensures` postcondition at function exit.
    Post,
    /// A struct invariant, checked at construction and mutation.
    Invariant,
    /// An implicit arithmetic-overflow obligation (Flux checks these with no
    /// annotation overhead; see §2.4 "Built-in Safety Checks").
    Overflow,
    /// A trusted lemma whose statement is discharged externally (Lean in the
    /// paper, exhaustive checking here).
    Lemma,
}

impl fmt::Display for ContractViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "contract violation [{:?}] at {}: {}",
            self.kind, self.site, self.predicate
        )
    }
}

impl std::error::Error for ContractViolation {}

/// Returns the current contract-checking mode for this thread.
///
/// A single [`simctx::SimContext`] access — this is on the hot path of
/// every `requires!`/`ensures!`/`invariant!` check.
#[inline]
pub fn mode() -> Mode {
    simctx::with(|c| c.mode.get())
}

/// Sets the contract-checking mode for this thread, returning the old mode.
pub fn set_mode(mode: Mode) -> Mode {
    simctx::with(|c| c.mode.replace(mode))
}

/// Runs `f` with the given mode, restoring the previous mode afterwards.
pub fn with_mode<T>(mode: Mode, f: impl FnOnce() -> T) -> T {
    struct Restore(Mode);
    impl Drop for Restore {
        fn drop(&mut self) {
            set_mode(self.0);
        }
    }
    let _restore = Restore(set_mode(mode));
    f()
}

/// Records a violation according to the current [`Mode`].
///
/// In [`Mode::Enforce`] this panics with the violation message so the
/// verifier (and tests) can recover it via `catch_unwind`.
#[track_caller]
pub fn report(violation: ContractViolation) {
    match mode() {
        Mode::Enforce => {
            let msg = violation.to_string();
            VIOLATIONS.with(|v| v.borrow_mut().push(violation));
            panic!("{msg}");
        }
        Mode::Observe => VIOLATIONS.with(|v| v.borrow_mut().push(violation)),
        Mode::Off => {}
    }
}

/// Drains and returns the violations recorded on this thread.
pub fn take_violations() -> Vec<ContractViolation> {
    VIOLATIONS.with(|v| std::mem::take(&mut *v.borrow_mut()))
}

/// Returns the number of violations currently recorded on this thread.
pub fn violation_count() -> usize {
    VIOLATIONS.with(|v| v.borrow().len())
}

/// Checks a precondition (Flux `requires`).
///
/// # Examples
///
/// ```
/// use tt_contracts::requires;
/// fn update_end(start: usize, end: usize) {
///     requires!("NonEmptyRange::update_end", end > start);
/// }
/// update_end(0, 8);
/// ```
#[macro_export]
macro_rules! requires {
    ($site:expr, $cond:expr) => {
        if $crate::mode() != $crate::Mode::Off && !($cond) {
            $crate::report($crate::ContractViolation {
                kind: $crate::ContractKind::Pre,
                site: $site,
                predicate: stringify!($cond),
            });
        }
    };
}

/// Checks a postcondition (Flux `ensures`).
#[macro_export]
macro_rules! ensures {
    ($site:expr, $cond:expr) => {
        if $crate::mode() != $crate::Mode::Off && !($cond) {
            $crate::report($crate::ContractViolation {
                kind: $crate::ContractKind::Post,
                site: $site,
                predicate: stringify!($cond),
            });
        }
    };
}

/// Checks a struct invariant (Flux `invariant`).
#[macro_export]
macro_rules! invariant {
    ($site:expr, $cond:expr) => {
        if $crate::mode() != $crate::Mode::Off && !($cond) {
            $crate::report($crate::ContractViolation {
                kind: $crate::ContractKind::Invariant,
                site: $site,
                predicate: stringify!($cond),
            });
        }
    };
}

/// Checked addition standing in for Flux's implicit overflow obligation.
///
/// Flux rejects code whose arithmetic may overflow; here an overflow in
/// [`Mode::Enforce`] reports a [`ContractKind::Overflow`] violation and
/// saturates so execution can continue under [`Mode::Observe`].
pub fn checked_add(site: &'static str, a: usize, b: usize) -> usize {
    match a.checked_add(b) {
        Some(v) => v,
        None => {
            report(ContractViolation {
                kind: ContractKind::Overflow,
                site,
                predicate: "a + b overflows usize",
            });
            usize::MAX
        }
    }
}

/// Checked subtraction standing in for Flux's implicit underflow obligation.
///
/// This is exactly the class of bug Flux flagged in Tock's
/// `update_app_mem_region` (`num_enabled_subregions0 - 1` underflowing to
/// `usize::MAX`, §2.2).
pub fn checked_sub(site: &'static str, a: usize, b: usize) -> usize {
    match a.checked_sub(b) {
        Some(v) => v,
        None => {
            report(ContractViolation {
                kind: ContractKind::Overflow,
                site,
                predicate: "a - b underflows usize",
            });
            0
        }
    }
}

/// Checked multiplication standing in for Flux's implicit overflow obligation.
pub fn checked_mul(site: &'static str, a: usize, b: usize) -> usize {
    match a.checked_mul(b) {
        Some(v) => v,
        None => {
            report(ContractViolation {
                kind: ContractKind::Overflow,
                site,
                predicate: "a * b overflows usize",
            });
            usize::MAX
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enforce_mode_panics_on_violation() {
        let err = std::panic::catch_unwind(|| {
            requires!("test_site", 1 > 2);
        });
        assert!(err.is_err());
        // The violation is also logged before the panic.
        let violations = take_violations();
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].kind, ContractKind::Pre);
        assert_eq!(violations[0].site, "test_site");
    }

    #[test]
    fn observe_mode_records_without_panicking() {
        with_mode(Mode::Observe, || {
            ensures!("obs", false);
            invariant!("obs", false);
        });
        let violations = take_violations();
        assert_eq!(violations.len(), 2);
        assert_eq!(violations[0].kind, ContractKind::Post);
        assert_eq!(violations[1].kind, ContractKind::Invariant);
    }

    #[test]
    fn off_mode_skips_checks() {
        with_mode(Mode::Off, || {
            requires!("off", false);
        });
        assert_eq!(violation_count(), 0);
    }

    #[test]
    fn mode_is_restored_after_with_mode() {
        assert_eq!(mode(), Mode::Enforce);
        with_mode(Mode::Off, || assert_eq!(mode(), Mode::Off));
        assert_eq!(mode(), Mode::Enforce);
    }

    #[test]
    fn mode_restored_even_on_panic() {
        let _ = std::panic::catch_unwind(|| {
            with_mode(Mode::Observe, || panic!("boom"));
        });
        assert_eq!(mode(), Mode::Enforce);
        let _ = take_violations();
    }

    #[test]
    fn passing_contracts_are_silent() {
        requires!("ok", 2 > 1);
        ensures!("ok", 1 + 1 == 2);
        invariant!("ok", true);
        assert_eq!(violation_count(), 0);
    }

    #[test]
    fn checked_arith_reports_overflow_kind() {
        with_mode(Mode::Observe, || {
            assert_eq!(checked_add("t", usize::MAX, 1), usize::MAX);
            assert_eq!(checked_sub("t", 0, 1), 0);
            assert_eq!(checked_mul("t", usize::MAX, 2), usize::MAX);
        });
        let violations = take_violations();
        assert_eq!(violations.len(), 3);
        assert!(violations.iter().all(|v| v.kind == ContractKind::Overflow));
    }

    #[test]
    fn checked_arith_passes_through_valid_values() {
        assert_eq!(checked_add("t", 2, 3), 5);
        assert_eq!(checked_sub("t", 3, 2), 1);
        assert_eq!(checked_mul("t", 4, 8), 32);
        assert_eq!(violation_count(), 0);
    }

    #[test]
    fn display_formats_violation() {
        let v = ContractViolation {
            kind: ContractKind::Post,
            site: "f",
            predicate: "x > 0",
        };
        let s = v.to_string();
        assert!(s.contains("Post"));
        assert!(s.contains("f"));
        assert!(s.contains("x > 0"));
    }
}
