//! Trusted lemmas, reproduced from §5 of the paper.
//!
//! TickTock needs facts about powers of two and modular arithmetic that make
//! SMT solvers (z3, cvc5) hang, so the paper states them as `#[trusted]`
//! lemma functions and proves them interactively in Lean. Here each lemma is
//! a callable function whose statement is additionally discharged by
//! *exhaustive structural checking* over the 32-bit power-of-two structure —
//! our stand-in for the Lean proofs (there are only 32 powers of two in
//! `u32`, so exhaustion is a complete proof for this domain).

use crate::math::is_pow2;
use crate::{report, ContractKind, ContractViolation};

/// Lemma: every power of two `>= 8` is a multiple of 8.
///
/// The paper's `lemma_pow2_octet`. Callers "invoke" the lemma to bring the
/// fact into scope; in this reproduction the call also dynamically checks the
/// hypothesis so misuse is caught.
// TRUSTED: lemma discharged externally (Lean in the paper; exhaustive
// structural checking in `discharge_all_exhaustively`).
pub fn lemma_pow2_octet(r: u32) {
    if !(is_pow2(r as usize) && r >= 8) {
        report(ContractViolation {
            kind: ContractKind::Lemma,
            site: "lemma_pow2_octet",
            predicate: "is_pow2(r) && 8 <= r",
        });
        return;
    }
    debug_assert_eq!(r % 8, 0);
}

/// Lemma: a power of two `>= 32` is a multiple of 32 (minimum Cortex-M
/// region size, so region starts aligned to region size are 32-aligned).
// TRUSTED: externally discharged lemma.
pub fn lemma_pow2_min_region(r: u32) {
    if !(is_pow2(r as usize) && r >= 32) {
        report(ContractViolation {
            kind: ContractKind::Lemma,
            site: "lemma_pow2_min_region",
            predicate: "is_pow2(r) && 32 <= r",
        });
        return;
    }
    debug_assert_eq!(r % 32, 0);
}

/// Lemma: an eighth of a power of two `>= 256` is itself a power of two
/// `>= 32` (Cortex-M subregion sizes are `region_size / 8`).
// TRUSTED: externally discharged lemma.
pub fn lemma_pow2_eighth(r: u32) {
    if !(is_pow2(r as usize) && r >= 256) {
        report(ContractViolation {
            kind: ContractKind::Lemma,
            site: "lemma_pow2_eighth",
            predicate: "is_pow2(r) && 256 <= r",
        });
        return;
    }
    debug_assert!(is_pow2((r / 8) as usize) && r / 8 >= 32);
}

/// Lemma: aligning `a` up to power-of-two `p` moves it by less than `p`:
/// `align_up(a, p) - a < p`.
// TRUSTED: externally discharged lemma.
pub fn lemma_align_up_bound(a: u32, p: u32) {
    if !(is_pow2(p as usize)) {
        report(ContractViolation {
            kind: ContractKind::Lemma,
            site: "lemma_align_up_bound",
            predicate: "is_pow2(p)",
        });
        return;
    }
    let aligned = crate::math::align_up(a as usize, p as usize) as u32;
    debug_assert!(aligned.wrapping_sub(a) < p);
}

/// Lemma: if `start` is aligned to power-of-two `size`, then for any
/// subregion index `i < 8`, `start + i * (size / 8)` stays within
/// `[start, start + size)` — the fact underpinning the Cortex-M subregion
/// end-address computation.
// TRUSTED: externally discharged lemma.
pub fn lemma_subregion_in_region(start: u32, size: u32, i: u32) {
    if !(is_pow2(size as usize) && size >= 256 && start.is_multiple_of(size) && i < 8) {
        report(ContractViolation {
            kind: ContractKind::Lemma,
            site: "lemma_subregion_in_region",
            predicate: "is_pow2(size) && 256 <= size && aligned(start, size) && i < 8",
        });
        return;
    }
    let sub = size / 8;
    debug_assert!(start.checked_add(i * sub).is_some());
    debug_assert!(start + i * sub < start + size);
}

/// Exhaustively discharges every lemma over its complete structural domain.
///
/// This is the reproduction's Lean proof: for 32-bit powers of two the
/// structural domain has only 32 elements, so full enumeration is a complete
/// proof of each universally quantified statement.
pub fn discharge_all_exhaustively() -> u64 {
    let mut cases = 0u64;

    // All 32 powers of two in u32.
    for exp in 0..32u32 {
        let p = 1u32 << exp;
        if p >= 8 {
            assert_eq!(p % 8, 0, "lemma_pow2_octet refuted at {p}");
            cases += 1;
        }
        if p >= 32 {
            assert_eq!(p % 32, 0, "lemma_pow2_min_region refuted at {p}");
            cases += 1;
        }
        if p >= 256 {
            let eighth = p / 8;
            assert!(
                is_pow2(eighth as usize) && eighth >= 32,
                "lemma_pow2_eighth refuted at {p}"
            );
            cases += 1;
        }
    }

    // align_up bound: sampled offsets within each alignment class cover all
    // residues for small alignments, structure for large ones.
    for exp in 0..20u32 {
        let p = 1u32 << exp;
        for residue in [0u32, 1, p / 2, p.saturating_sub(1)] {
            let a = 0x2000_0000u32.wrapping_add(residue);
            let aligned = crate::math::align_up(a as usize, p as usize) as u32;
            assert!(aligned.wrapping_sub(a) < p.max(1));
            cases += 1;
        }
    }

    // Subregion containment: all (size-exponent, index) pairs.
    for exp in 8..28u32 {
        let size = 1u32 << exp;
        let start = size * 2; // Aligned by construction.
        for i in 0..8u32 {
            let sub = size / 8;
            assert!(start + i * sub < start + size);
            cases += 1;
        }
    }

    cases
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{take_violations, with_mode, Mode};

    #[test]
    fn exhaustive_discharge_passes() {
        let cases = discharge_all_exhaustively();
        assert!(cases > 100);
    }

    #[test]
    fn lemma_calls_with_valid_hypotheses_are_silent() {
        lemma_pow2_octet(32);
        lemma_pow2_min_region(64);
        lemma_pow2_eighth(256);
        lemma_align_up_bound(0x2000_0003, 32);
        lemma_subregion_in_region(0x1000, 0x1000, 7);
        assert_eq!(crate::violation_count(), 0);
    }

    #[test]
    fn lemma_misuse_reports_violation() {
        with_mode(Mode::Observe, || {
            lemma_pow2_octet(33); // Not a power of two.
            lemma_pow2_octet(4); // Too small.
            lemma_pow2_eighth(128); // Below subregion threshold.
            lemma_subregion_in_region(0x1001, 0x1000, 0); // Misaligned start.
            lemma_subregion_in_region(0x1000, 0x1000, 8); // Index out of range.
        });
        let violations = take_violations();
        assert_eq!(violations.len(), 5);
        assert!(violations.iter().all(|v| v.kind == ContractKind::Lemma));
    }

    #[test]
    fn octet_lemma_statement_holds_exhaustively() {
        for exp in 3..32u32 {
            assert_eq!((1u32 << exp) % 8, 0);
        }
    }
}
