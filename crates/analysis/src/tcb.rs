//! Pass 1: the TCB audit.
//!
//! Everything that can widen the trusted computing base must be *declared*
//! trusted in `ci/tcb_allowlist.toml`, or the audit fails:
//!
//! * `unsafe` blocks and functions — the classic Rust escape hatch. This
//!   workspace is a simulator and has none today; the rule keeps it that
//!   way unless a future PR consciously allowlists one.
//! * Raw MPU/PMP register stores (`write_rbar`/`write_rasr`/`write_rnr`/
//!   `write_ctrl`/`write_region` on ARM, `write_cfg`/`write_addr` on
//!   RISC-V) — the commit paths whose correctness the §4.3 invariant
//!   assumes. Only the simulated register files and the declared driver
//!   commit functions may touch them.
//! * Raw pointer (DMA-shaped) operations: `*mut`/`*const` types,
//!   `transmute`, volatile/`ptr::` reads and writes. The paper's DMA story
//!   (§4.4) wraps these behind checked abstractions; a bare one is TCB.

use crate::config::AuditConfig;
use crate::findings::{Finding, Pass};
use crate::source::{find_token, ScannedFile, Span};

/// Raw register-store methods: calling one commits protection state.
pub(crate) const REGISTER_STORES: &[&str] = &[
    "write_rbar",
    "write_rasr",
    "write_rnr",
    "write_ctrl",
    "write_region",
    "write_cfg",
    "write_addr",
];

/// Raw pointer / DMA operation tokens.
pub(crate) const RAW_POINTER_OPS: &[&str] = &["transmute", "read_volatile", "write_volatile"];

/// Scans one file for TCB surface outside the allowlist.
pub fn audit_file(file: &ScannedFile, config: &AuditConfig) -> Vec<Finding> {
    let mut findings = Vec::new();
    if config.is_trusted_file(&file.rel_path) {
        return findings; // The whole file is declared TCB.
    }
    let mut report = |line: usize, message: String| {
        // A hit inside an allowlisted function is declared trust.
        let enclosing = file
            .fns
            .iter()
            .find(|f| f.start <= line && line <= f.end)
            .map(|f| f.name.as_str());
        if !config.is_trusted(&file.rel_path, enclosing) {
            findings.push(Finding {
                pass: Pass::Tcb,
                span: Some(Span {
                    file: file.rel_path.clone(),
                    line,
                }),
                message,
            });
        }
    };
    for (idx, code) in file.code.iter().enumerate() {
        let line = idx + 1;
        if find_token(code, "unsafe").is_some() {
            report(
                line,
                "`unsafe` outside the allowlisted TCB (declare it in ci/tcb_allowlist.toml or remove it)".into(),
            );
        }
        for store in REGISTER_STORES {
            // A *call* (`.write_rbar(` / `hw.write_region(`) is a raw
            // commit; the defining `fn write_rbar` lives in the (fully
            // trusted) register-file modules.
            if let Some(at) = find_token(code, store) {
                let is_call = code[at + store.len()..].trim_start().starts_with('(')
                    && at > 0
                    && code[..at].trim_end().ends_with('.');
                if is_call {
                    report(
                        line,
                        format!(
                            "raw protection-register store `{store}` outside the allowlisted TCB"
                        ),
                    );
                }
            }
        }
        for op in RAW_POINTER_OPS {
            if find_token(code, op).is_some() {
                report(
                    line,
                    format!("raw pointer operation `{op}` outside the allowlisted TCB"),
                );
            }
        }
        if code.contains("*mut ") || code.contains("*const ") {
            report(
                line,
                "raw pointer type (`*mut`/`*const`) outside the allowlisted TCB".into(),
            );
        }
    }
    findings
}

/// Runs the TCB audit over a set of scanned files.
pub fn audit(files: &[ScannedFile], config: &AuditConfig) -> Vec<Finding> {
    files.iter().flat_map(|f| audit_file(f, config)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::scan_text;

    fn cfg(trusted: &[&str]) -> AuditConfig {
        AuditConfig {
            trusted: trusted.iter().map(|s| s.to_string()).collect(),
            ..Default::default()
        }
    }

    #[test]
    fn stray_unsafe_is_flagged_with_span() {
        let f = scan_text(
            "crates/x/src/lib.rs",
            "pub fn f() {\n    unsafe { core::hint::unreachable_unchecked() }\n}\n",
        );
        let findings = audit_file(&f, &cfg(&[]));
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].span.as_ref().unwrap().line, 2);
        assert!(findings[0].message.contains("unsafe"));
    }

    #[test]
    fn unsafe_in_doc_or_string_is_not_flagged() {
        let f = scan_text(
            "crates/x/src/lib.rs",
            "/// This fn is not unsafe.\npub fn f() {\n    let _ = \"unsafe\";\n}\n",
        );
        assert!(audit_file(&f, &cfg(&[])).is_empty());
    }

    #[test]
    fn register_store_calls_are_flagged_but_definitions_are_not() {
        let f = scan_text(
            "crates/x/src/lib.rs",
            "pub fn write_rbar(v: u32) {}\npub fn g(hw: &mut Hw) {\n    hw.write_rbar(0);\n}\n",
        );
        let findings = audit_file(&f, &cfg(&[]));
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].span.as_ref().unwrap().line, 3);
    }

    #[test]
    fn allowlisted_file_and_fn_suppress_findings() {
        let src = "pub fn commit(hw: &mut Hw) {\n    hw.write_region(0, 1, 2);\n}\npub fn other(hw: &mut Hw) {\n    hw.write_cfg(0, 1);\n}\n";
        let f = scan_text("crates/x/src/lib.rs", src);
        assert!(audit_file(&f, &cfg(&["crates/x/src/lib.rs"])).is_empty());
        let fn_level = audit_file(&f, &cfg(&["crates/x/src/lib.rs::commit"]));
        assert_eq!(fn_level.len(), 1);
        assert_eq!(fn_level[0].span.as_ref().unwrap().line, 5);
    }

    #[test]
    fn raw_pointer_ops_are_flagged() {
        let f = scan_text(
            "crates/x/src/lib.rs",
            "pub fn dma(p: *mut u8) {\n    let _ = p;\n}\n",
        );
        let findings = audit_file(&f, &cfg(&[]));
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("raw pointer type"));
    }
}
