//! The audit driver: scan once, run the requested passes, build the report.
//!
//! Two entry points: [`run`] audits from scratch; [`run_cached`] routes
//! the three cacheable passes through a [`VerdictCache`]
//! (`ci/audit_cache.bin`), skipping files whose content, allowlist and
//! registry hashes are unchanged since the last clean audit. The TCB and
//! coverage passes cache one verdict per file (their findings are purely
//! file-local); the cross-check diffs global sets, so it caches a single
//! whole-workspace verdict. The staleness pass is never cached — it is
//! the guard on the allowlist the other passes' domain hashes derive
//! from, and it must see the real tree every run. Only *clean* results
//! are stored: a file with findings is re-audited until it is fixed, so
//! findings can never be masked by a cache hit.

use std::path::{Path, PathBuf};
use std::time::Instant;

use crate::config::AuditConfig;
use crate::findings::{Finding, Pass};
use crate::report::{component_rows, AuditReport, CacheStats};
use crate::source::{scan_file, workspace_sources, ScannedFile};
use crate::staleness::{self, StaleEntry};
use crate::{coverage, crosscheck, tcb};
use tt_contracts::obligation::Registry;
use tt_contracts::span::Fnv;
use tt_contracts::vcache::{verdict_key, LoadOutcome, Verdict, VerdictCache};

/// Cache kind tag for per-file TCB-audit verdicts (the `verify_all`
/// verdicts use tag 0 and the `ContractKind` ordinals stay below 5).
pub const TAG_TCB: u8 = 5;
/// Cache kind tag for per-file invariant-coverage verdicts.
pub const TAG_COVERAGE: u8 = 6;
/// Cache kind tag for the whole-workspace cross-check verdict.
pub const TAG_CROSSCHECK: u8 = 7;

/// Default on-disk location of the audit verdict cache (workspace-
/// relative, gitignored).
pub const DEFAULT_AUDIT_CACHE: &str = "ci/audit_cache.bin";

/// The audit cache schema generation; bump to force a cold audit when
/// the meaning of a cached verdict changes.
const SCHEMA: u64 = 1;

/// Locates the workspace root from this crate's manifest directory.
pub fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("workspace root")
        .to_path_buf()
}

/// The default allowlist location, relative to the workspace root.
pub const DEFAULT_CONFIG: &str = "ci/tcb_allowlist.toml";

/// Loads and scans the audited source set under `root`.
pub fn load_workspace(root: &Path) -> Vec<ScannedFile> {
    workspace_sources(root)
        .iter()
        .filter_map(|p| scan_file(root, p))
        .collect()
}

/// The audit's toolchain/config hash: tool version, build profile and
/// cache schema. A mismatch makes every cached audit verdict unreachable.
pub fn audit_config_hash() -> u64 {
    let mut h = Fnv::new();
    h.mix_u64(SCHEMA);
    h.mix_u64(tt_contracts::vcache::VERSION as u64);
    h.mix_str(env!("CARGO_PKG_VERSION"));
    h.mix_u64(cfg!(debug_assertions) as u64);
    h.finish()
}

/// Hash of the parsed allowlist — the obligation-domain leg of every
/// audit verdict. Any entry added, removed or edited in any section
/// changes this hash and invalidates all cached audit verdicts.
fn allowlist_domain(config: &AuditConfig) -> u64 {
    let mut h = Fnv::new();
    for (i, list) in [
        &config.trusted,
        &config.coverage_files,
        &config.allow_unregistered,
        &config.allow_dead,
    ]
    .iter()
    .enumerate()
    {
        h.mix_u64(i as u64);
        h.mix_u64(list.len() as u64);
        for s in list.iter() {
            h.mix_str(s);
        }
    }
    h.finish()
}

/// Identity hash of a registry's obligation set (names, kinds, trusted
/// flags): a registration added or changed re-runs the cross-check.
fn registry_signature(registry: &Registry) -> u64 {
    let mut h = Fnv::new();
    h.mix_u64(registry.obligations().len() as u64);
    for o in registry.obligations() {
        h.mix_str(o.component);
        h.mix_str(&o.function);
        h.mix_u64(o.kind as u64);
        h.mix_u64(o.trusted as u64);
    }
    h.finish()
}

/// Runs the selected passes over pre-scanned files (no caching).
pub fn run_passes(files: &[ScannedFile], config: &AuditConfig, passes: &[Pass]) -> Vec<Finding> {
    let mut findings = run_cacheable_passes(files, config, passes);
    if passes.contains(&Pass::Staleness) {
        findings.extend(staleness::audit(files, config));
    }
    findings
}

/// Runs the full audit rooted at `root` and assembles the report.
pub fn run(root: &Path, config: &AuditConfig, passes: &[Pass]) -> AuditReport {
    run_inner(root, config, passes, None)
}

/// Runs the audit with the verdict cache at `cache_file`: unchanged files
/// (TCB, coverage) and an unchanged workspace (cross-check) are skipped.
/// `force_cold` discards any existing cache first. A missing, corrupt or
/// config-mismatched cache degrades to exactly the cold audit — never
/// partial reuse.
pub fn run_cached(
    root: &Path,
    config: &AuditConfig,
    passes: &[Pass],
    cache_file: &Path,
    force_cold: bool,
) -> AuditReport {
    run_inner(root, config, passes, Some((cache_file, force_cold)))
}

fn run_inner(
    root: &Path,
    config: &AuditConfig,
    passes: &[Pass],
    cache: Option<(&Path, bool)>,
) -> AuditReport {
    let start = Instant::now();
    let files = load_workspace(root);

    let (mut findings, cache_stats) = match cache {
        None => (run_cacheable_passes(&files, config, passes), None),
        Some((path, force_cold)) => {
            let cfg_hash = audit_config_hash();
            let (mut vc, outcome) = if force_cold {
                let _ = std::fs::remove_file(path);
                (VerdictCache::new(cfg_hash), LoadOutcome::NoFile)
            } else {
                VerdictCache::load_or_cold(path, cfg_hash)
            };
            let domain = allowlist_domain(config);
            let mut findings = Vec::new();
            let mut skipped = [0usize; 3];

            // Per-file passes: one verdict per (pass, file).
            type FilePass = fn(&ScannedFile, &AuditConfig) -> Vec<Finding>;
            let per_file: [(Pass, u8, FilePass); 2] = [
                (Pass::Tcb, TAG_TCB, tcb::audit_file),
                (Pass::Coverage, TAG_COVERAGE, coverage::audit_file),
            ];
            for (i, (pass, tag, pass_fn)) in per_file.into_iter().enumerate() {
                if !passes.contains(&pass) {
                    continue;
                }
                for file in &files {
                    let key = verdict_key(tag, pass.name(), &file.rel_path);
                    let fnh = file.content_hash();
                    if vc.lookup(key, fnh, domain).is_some() {
                        skipped[i] += 1;
                        continue;
                    }
                    let t0 = Instant::now();
                    let fs = pass_fn(file, config);
                    if fs.is_empty() {
                        vc.store(Verdict {
                            key_hash: key,
                            fn_hash: fnh,
                            domain_hash: domain,
                            cases: 1,
                            duration_ns: t0.elapsed().as_nanos().min(u64::MAX as u128) as u64,
                            trusted: false,
                            kind: tag,
                        });
                    }
                    findings.extend(fs);
                }
            }

            // Cross-check: global set diff, one whole-workspace verdict.
            if passes.contains(&Pass::Crosscheck) {
                let registry = crosscheck::workspace_registry();
                let mut wh = Fnv::new();
                wh.mix_u64(files.len() as u64);
                for f in &files {
                    wh.mix_str(&f.rel_path);
                    wh.mix_u64(f.content_hash());
                }
                let ws_hash = wh.finish();
                let mut dh = Fnv::new();
                dh.mix_u64(domain);
                dh.mix_u64(registry_signature(&registry));
                let xdomain = dh.finish();
                let key = verdict_key(TAG_CROSSCHECK, "crosscheck", "workspace");
                if vc.lookup(key, ws_hash, xdomain).is_some() {
                    skipped[2] = 1;
                } else {
                    let t0 = Instant::now();
                    let fs = crosscheck::audit_against(&files, &registry, config);
                    if fs.is_empty() {
                        vc.store(Verdict {
                            key_hash: key,
                            fn_hash: ws_hash,
                            domain_hash: xdomain,
                            cases: 1,
                            duration_ns: t0.elapsed().as_nanos().min(u64::MAX as u128) as u64,
                            trusted: false,
                            kind: TAG_CROSSCHECK,
                        });
                    }
                    findings.extend(fs);
                }
            }

            let wall = start.elapsed();
            if !outcome.is_warm() {
                vc.set_cold_wall_ns(wall.as_nanos().min(u64::MAX as u128) as u64);
            }
            if let Err(e) = vc.save(path) {
                eprintln!(
                    "warning: could not save audit cache {}: {e}",
                    path.display()
                );
            }
            let stats = CacheStats {
                warm: outcome.is_warm(),
                hit_rate: vc.hit_rate(),
                wall_ms: wall.as_secs_f64() * 1000.0,
                cold_wall_ms: vc.cold_wall_ns() as f64 / 1e6,
                skipped_tcb: skipped[0],
                skipped_coverage: skipped[1],
                skipped_crosscheck: skipped[2],
                corrupt: match &outcome {
                    LoadOutcome::Corrupt(e) => Some(e.to_string()),
                    _ => None,
                },
            };
            (findings, Some(stats))
        }
    };

    // The staleness lint runs on every audit, cached or not: it guards
    // the allowlist that every cached verdict's domain hash derives from.
    let stale_entries = if passes.contains(&Pass::Staleness) {
        let entries = staleness::stale_entries(&files, config);
        findings.extend(entries.iter().map(StaleEntry::to_finding));
        entries
    } else {
        Vec::new()
    };

    let (rows, total, total_trusted_loc) = component_rows(root, &files, config);
    AuditReport {
        rows,
        total,
        total_trusted_loc,
        findings,
        stale_entries,
        cache: cache_stats,
    }
}

/// The three cacheable passes, uncached (the [`run`] path).
fn run_cacheable_passes(
    files: &[ScannedFile],
    config: &AuditConfig,
    passes: &[Pass],
) -> Vec<Finding> {
    let mut findings = Vec::new();
    if passes.contains(&Pass::Tcb) {
        findings.extend(tcb::audit(files, config));
    }
    if passes.contains(&Pass::Coverage) {
        findings.extend(coverage::audit(files, config));
    }
    if passes.contains(&Pass::Crosscheck) {
        findings.extend(crosscheck::audit(files, config));
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL_PASSES: &[Pass] = &[Pass::Tcb, Pass::Coverage, Pass::Crosscheck, Pass::Staleness];

    fn temp_cache(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("ttac-{tag}-{}.bin", std::process::id()))
    }

    #[test]
    fn workspace_root_contains_crates_dir() {
        assert!(workspace_root().join("crates").is_dir());
    }

    #[test]
    fn load_workspace_scans_the_kernel_sources() {
        let files = load_workspace(&workspace_root());
        assert!(files.len() > 20, "only {} files", files.len());
        assert!(files
            .iter()
            .any(|f| f.rel_path == "crates/core/src/breaks.rs"));
        // Shims and test dirs stay out of the audited set.
        assert!(files.iter().all(|f| !f.rel_path.starts_with("shims/")));
    }

    #[test]
    fn full_audit_on_the_real_tree_is_clean() {
        // The tree ships with a valid allowlist; the audit must gate green
        // — including the staleness lint over the allowlist itself.
        let root = workspace_root();
        let config = AuditConfig::load(&root.join(DEFAULT_CONFIG)).expect("allowlist parses");
        let report = run(&root, &config, ALL_PASSES);
        assert!(
            report.clean(),
            "audit findings on the shipped tree:\n{}",
            report
                .findings
                .iter()
                .map(|f| f.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        );
        assert!(report.stale_entries.is_empty());
        assert_eq!(report.rows.len(), 5);
        assert!(report.total_trusted_loc > 0, "no trusted LOC accounted");
    }

    #[test]
    fn cached_audit_cold_then_warm_skips_everything() {
        let root = workspace_root();
        let config = AuditConfig::load(&root.join(DEFAULT_CONFIG)).expect("allowlist parses");
        let path = temp_cache("warm");
        let _ = std::fs::remove_file(&path);

        let cold = run_cached(&root, &config, ALL_PASSES, &path, true);
        assert!(cold.clean());
        let cs = cold.cache.as_ref().expect("cache stats");
        assert!(!cs.warm);
        assert_eq!(cs.hit_rate, 0.0);
        assert_eq!(
            cs.skipped_tcb + cs.skipped_coverage + cs.skipped_crosscheck,
            0
        );

        let warm = run_cached(&root, &config, ALL_PASSES, &path, false);
        assert!(warm.clean());
        let ws = warm.cache.as_ref().expect("cache stats");
        assert!(ws.warm);
        let n_files = load_workspace(&root).len();
        assert_eq!(ws.skipped_tcb, n_files, "every file served from cache");
        assert_eq!(ws.skipped_coverage, n_files);
        assert_eq!(ws.skipped_crosscheck, 1);
        assert!(ws.hit_rate >= 0.95, "hit rate {:.4}", ws.hit_rate);
        // Findings are identical either way.
        assert_eq!(warm.findings.len(), cold.findings.len());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn changed_allowlist_invalidates_every_audit_verdict() {
        let root = workspace_root();
        let config = AuditConfig::load(&root.join(DEFAULT_CONFIG)).expect("allowlist parses");
        let path = temp_cache("inval");
        let _ = std::fs::remove_file(&path);
        let _ = run_cached(&root, &config, &[Pass::Tcb], &path, true);

        // An edited allowlist entry must never reuse a cached verdict.
        let mut edited = config.clone();
        edited.trusted.push("crates/hw/src/cortexm".into());
        let rerun = run_cached(&root, &edited, &[Pass::Tcb], &path, false);
        let cs = rerun.cache.as_ref().expect("cache stats");
        assert_eq!(cs.skipped_tcb, 0, "allowlist change must miss everywhere");
        assert_eq!(cs.hit_rate, 0.0);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn corrupt_audit_cache_degrades_to_a_cold_run() {
        let root = workspace_root();
        let config = AuditConfig::load(&root.join(DEFAULT_CONFIG)).expect("allowlist parses");
        let path = temp_cache("corrupt");
        let _ = run_cached(&root, &config, &[Pass::Coverage], &path, true);

        // Flip one bit in the middle of the cache file.
        let mut bytes = std::fs::read(&path).expect("cache written");
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&path, &bytes).expect("rewrite");

        let rerun = run_cached(&root, &config, &[Pass::Coverage], &path, false);
        let cs = rerun.cache.as_ref().expect("cache stats");
        assert!(!cs.warm, "corrupt cache must not count as warm");
        assert!(cs.corrupt.is_some(), "corruption must be surfaced");
        assert_eq!(
            cs.skipped_coverage, 0,
            "no partial reuse from a corrupt cache"
        );
        // The rewritten (valid) cache warms the next run again.
        let warm = run_cached(&root, &config, &[Pass::Coverage], &path, false);
        assert!(warm.cache.as_ref().unwrap().warm);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn different_registries_have_different_signatures() {
        use tt_contracts::obligation::CheckResult;
        use tt_contracts::ContractKind;
        let mut a = Registry::new();
        a.add_fn("k", "f", ContractKind::Post, || CheckResult::Verified {
            cases: 1,
        });
        let mut b = Registry::new();
        b.add_fn("k", "g", ContractKind::Post, || CheckResult::Verified {
            cases: 1,
        });
        assert_ne!(registry_signature(&a), registry_signature(&b));
        assert_ne!(registry_signature(&a), registry_signature(&Registry::new()));
    }

    #[test]
    fn allowlist_domain_sections_do_not_collide() {
        // The same string in different sections must hash differently.
        let a = AuditConfig {
            trusted: vec!["x".into()],
            ..Default::default()
        };
        let b = AuditConfig {
            allow_dead: vec!["x".into()],
            ..Default::default()
        };
        assert_ne!(allowlist_domain(&a), allowlist_domain(&b));
    }
}
