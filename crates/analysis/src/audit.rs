//! The audit driver: scan once, run the requested passes, build the report.

use std::path::{Path, PathBuf};

use crate::config::AuditConfig;
use crate::findings::{Finding, Pass};
use crate::report::{component_rows, AuditReport};
use crate::source::{scan_file, workspace_sources, ScannedFile};
use crate::{coverage, crosscheck, tcb};

/// Locates the workspace root from this crate's manifest directory.
pub fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("workspace root")
        .to_path_buf()
}

/// The default allowlist location, relative to the workspace root.
pub const DEFAULT_CONFIG: &str = "ci/tcb_allowlist.toml";

/// Loads and scans the audited source set under `root`.
pub fn load_workspace(root: &Path) -> Vec<ScannedFile> {
    workspace_sources(root)
        .iter()
        .filter_map(|p| scan_file(root, p))
        .collect()
}

/// Runs the selected passes over pre-scanned files.
pub fn run_passes(files: &[ScannedFile], config: &AuditConfig, passes: &[Pass]) -> Vec<Finding> {
    let mut findings = Vec::new();
    if passes.contains(&Pass::Tcb) {
        findings.extend(tcb::audit(files, config));
    }
    if passes.contains(&Pass::Coverage) {
        findings.extend(coverage::audit(files, config));
    }
    if passes.contains(&Pass::Crosscheck) {
        findings.extend(crosscheck::audit(files, config));
    }
    findings
}

/// Runs the full audit rooted at `root` and assembles the report.
pub fn run(root: &Path, config: &AuditConfig, passes: &[Pass]) -> AuditReport {
    let files = load_workspace(root);
    let findings = run_passes(&files, config, passes);
    let (rows, total, total_trusted_loc) = component_rows(root, &files, config);
    AuditReport {
        rows,
        total,
        total_trusted_loc,
        findings,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workspace_root_contains_crates_dir() {
        assert!(workspace_root().join("crates").is_dir());
    }

    #[test]
    fn load_workspace_scans_the_kernel_sources() {
        let files = load_workspace(&workspace_root());
        assert!(files.len() > 20, "only {} files", files.len());
        assert!(files
            .iter()
            .any(|f| f.rel_path == "crates/core/src/breaks.rs"));
        // Shims and test dirs stay out of the audited set.
        assert!(files.iter().all(|f| !f.rel_path.starts_with("shims/")));
    }

    #[test]
    fn full_audit_on_the_real_tree_is_clean() {
        // The tree ships with a valid allowlist; the audit must gate green.
        let root = workspace_root();
        let config = AuditConfig::load(&root.join(DEFAULT_CONFIG)).expect("allowlist parses");
        let report = run(
            &root,
            &config,
            &[Pass::Tcb, Pass::Coverage, Pass::Crosscheck],
        );
        assert!(
            report.clean(),
            "audit findings on the shipped tree:\n{}",
            report
                .findings
                .iter()
                .map(|f| f.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        );
        assert_eq!(report.rows.len(), 5);
        assert!(report.total_trusted_loc > 0, "no trusted LOC accounted");
    }
}
