//! Pass 2: the invariant-coverage lint.
//!
//! The §4.3 isolation argument only holds if every mutation of the
//! invariant-bearing structures (`AppBreaks`, `AppMemoryAllocator`,
//! `RArray`) re-establishes the invariant before control returns. Flux
//! enforces this by type; the runtime engine enforces it dynamically —
//! but nothing stopped a new public mutator from *forgetting* the
//! `check_invariants()` call. This pass closes that hole statically.
//!
//! Rule, per public `&mut self` function in the configured files: walking
//! the body top to bottom, a *mutation* (field assignment or mutating call
//! on a field) arms the lint; a *discharge* (`check_invariants()` /
//! `self.check()`) clears it; reaching a *success exit* (a `return` that
//! is not `Err`, an `Ok(..)` tail, or the end of the body) while armed is
//! a violation. Early `Err` returns are validation, not mutation escapes.
//! A `// TRUSTED:` marker on the function opts it out explicitly — the
//! same annotation Fig. 10 counts as trusted surface.

use crate::config::AuditConfig;
use crate::findings::{Finding, Pass};
use crate::source::{find_token, FnSpan, ScannedFile, Span};

/// Whether a code line mutates `self` state: `self.field = ...` (also
/// through an index), or a mutating method call on a field
/// (`self.field.set*(/push(/insert(/remove(/clear(`).
fn is_mutation(code: &str) -> bool {
    let Some(at) = find_token(code, "self") else {
        return false;
    };
    let rest = &code[at + 4..];
    let Some(rest) = rest.strip_prefix('.') else {
        return false;
    };
    // Walk the access path: identifiers, indexing, and one trailing call.
    let mut path = String::new();
    for c in rest.chars() {
        if c.is_alphanumeric() || c == '_' || c == '.' || c == '[' || c == ']' {
            path.push(c);
        } else {
            break;
        }
    }
    let after = &rest[path.len()..];
    let assigned = {
        let t = after.trim_start();
        t.starts_with('=') && !t.starts_with("==")
    };
    if assigned {
        return true;
    }
    // Mutating method call somewhere on the path: `.set`, `.push(`, ...
    let segments: Vec<&str> = path.split('.').collect();
    segments.iter().any(|s| {
        let s = s.trim_end_matches(['[', ']']);
        s.starts_with("set") || matches!(s, "push" | "insert" | "remove" | "clear")
    })
}

/// Whether a code line discharges the invariant.
fn is_discharge(code: &str) -> bool {
    code.contains("check_invariants()") || code.contains("self.check()")
}

/// Whether a code line is a success exit (the lint fires if mutations are
/// pending here). `return Err(..)` / `Err(..)` tails are failure exits.
fn is_success_exit(code: &str) -> bool {
    let t = code.trim();
    if let Some(rest) = t.strip_prefix("return") {
        return !rest.trim_start().starts_with("Err");
    }
    // An `Ok(..)` tail expression (possibly `Ok(())`).
    t.starts_with("Ok(")
}

/// Lints one public mutator's body.
fn lint_fn(file: &ScannedFile, f: &FnSpan) -> Option<Finding> {
    // Body: lines after the signature's opening brace to the closing one.
    let mut armed = false;
    let mut armed_line = 0;
    for idx in f.start - 1..f.end {
        let code = &file.code[idx];
        if is_mutation(code) {
            armed = true;
            armed_line = idx + 1;
        }
        if is_discharge(code) {
            armed = false;
        }
        if is_success_exit(code) && armed {
            return Some(violation(file, f, idx + 1, armed_line));
        }
    }
    // End of body is the implicit success exit.
    if armed {
        return Some(violation(file, f, f.end, armed_line));
    }
    None
}

fn violation(file: &ScannedFile, f: &FnSpan, exit_line: usize, armed_line: usize) -> Finding {
    Finding {
        pass: Pass::Coverage,
        span: Some(Span {
            file: file.rel_path.clone(),
            line: exit_line,
        }),
        message: format!(
            "public mutator `{}` can return without discharging check_invariants() \
             (state mutated at line {armed_line}; add the discharge on every success \
             path or mark the fn `// TRUSTED:`)",
            f.name
        ),
    }
}

/// Lints one file (no findings unless it is a configured coverage file —
/// the per-file granularity the incremental audit cache keys on).
pub fn audit_file(file: &ScannedFile, config: &AuditConfig) -> Vec<Finding> {
    let mut findings = Vec::new();
    if !config.coverage_files.iter().any(|c| c == &file.rel_path) {
        return findings;
    }
    for f in &file.fns {
        if !f.is_pub || !f.takes_mut_self || f.trusted {
            continue;
        }
        findings.extend(lint_fn(file, f));
    }
    findings
}

/// Runs the coverage lint over the configured files.
pub fn audit(files: &[ScannedFile], config: &AuditConfig) -> Vec<Finding> {
    files.iter().flat_map(|f| audit_file(f, config)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::scan_text;

    fn cfg() -> AuditConfig {
        AuditConfig {
            coverage_files: vec!["crates/core/src/breaks.rs".into()],
            ..Default::default()
        }
    }

    fn run(src: &str) -> Vec<Finding> {
        let f = scan_text("crates/core/src/breaks.rs", src);
        audit(&[f], &cfg())
    }

    const GOOD: &str = "impl AppBreaks {\n\
        pub fn set_app_break(&mut self, b: usize) -> Result<(), E> {\n\
            if b == 0 {\n\
                return Err(E::Bad);\n\
            }\n\
            self.app_break = b;\n\
            self.check();\n\
            Ok(())\n\
        }\n\
    }\n";

    const BAD: &str = "impl AppBreaks {\n\
        pub fn set_app_break(&mut self, b: usize) -> Result<(), E> {\n\
            self.app_break = b;\n\
            Ok(())\n\
        }\n\
    }\n";

    #[test]
    fn discharged_mutator_passes() {
        assert!(run(GOOD).is_empty());
    }

    #[test]
    fn undischarged_mutator_is_flagged() {
        let findings = run(BAD);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("set_app_break"));
        assert_eq!(findings[0].span.as_ref().unwrap().line, 4);
    }

    #[test]
    fn early_err_return_before_mutation_is_fine() {
        // The validation-then-mutate shape of the real set_app_break.
        assert!(run(GOOD).is_empty());
    }

    #[test]
    fn success_return_after_mutation_without_discharge_is_flagged() {
        let src = "impl A {\n\
            pub fn m(&mut self) -> Result<(), E> {\n\
                self.x = 1;\n\
                if cond() {\n\
                    return Ok(());\n\
                }\n\
                self.check();\n\
                Ok(())\n\
            }\n\
        }\n";
        let findings = run(src);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].span.as_ref().unwrap().line, 5);
    }

    #[test]
    fn mutating_method_calls_arm_the_lint() {
        let src = "impl A {\n\
            pub fn m(&mut self) {\n\
                self.regions.set(1, r);\n\
            }\n\
        }\n";
        let findings = run(src);
        assert_eq!(findings.len(), 1, "{findings:?}");
    }

    #[test]
    fn trusted_marker_opts_out() {
        let src = "impl A {\n\
            // TRUSTED: formatting only.\n\
            pub fn m(&mut self) {\n\
                self.x = 1;\n\
            }\n\
        }\n";
        assert!(run(src).is_empty());
    }

    #[test]
    fn non_pub_and_non_mut_fns_are_skipped() {
        let src = "impl A {\n\
            fn private(&mut self) { self.x = 1; }\n\
            pub fn read(&self) -> usize { self.x }\n\
        }\n";
        assert!(run(src).is_empty());
    }

    #[test]
    fn indexed_assignment_counts_as_mutation() {
        assert!(is_mutation("        self.regions[i] = region;"));
        assert!(is_mutation("self.generation = next_generation();"));
        assert!(is_mutation("self.breaks.set_app_break(b).map_err(|_| E)?;"));
        assert!(!is_mutation("if self.x == 1 {"));
        assert!(!is_mutation("let y = self.x;"));
    }
}
