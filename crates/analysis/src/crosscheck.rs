//! Pass 3: the obligation cross-check.
//!
//! The runtime contract engine (`tt-contracts`) has two halves that can
//! silently drift apart: the *sites* in kernel code (`requires!` /
//! `ensures!` / `invariant!` macros and `checked_*` arithmetic) and the
//! *obligations* registered for the Fig. 10/12 verifier. A site with no
//! obligation is a contract the verifier never discharges; an obligation
//! with no live code is a dead spec inflating the proof-effort numbers.
//! This pass diffs the two:
//!
//! * every contract site found in source must match a registered
//!   obligation (by full name, type, or method), or be allowlisted under
//!   `[crosscheck] allow_unregistered`;
//! * every registered, non-`#[trusted]` obligation must anchor to live
//!   code (its method named by a `fn`, or its type appearing as an
//!   identifier), or be allowlisted under `[crosscheck] allow_dead`.

use std::collections::BTreeSet;

use crate::config::AuditConfig;
use crate::findings::{Finding, Pass};
use crate::source::{find_token, ScannedFile, Span};
use tt_contracts::obligation::Registry;
use tt_legacy::BugVariant;

/// Tokens that open a contract site whose first string argument names it.
const SITE_MARKERS: &[&str] = &[
    "requires!",
    "ensures!",
    "invariant!",
    "checked_add",
    "checked_sub",
    "checked_mul",
];

/// Crates whose sources are outside the cross-check: the contract engine
/// itself (its docs and tests exercise the macros with synthetic sites)
/// and this tool.
const EXEMPT_PREFIXES: &[&str] = &["crates/contracts/", "crates/analysis/"];

/// One contract site recovered from source.
#[derive(Debug, Clone)]
pub struct Site {
    /// The site name: the macro's (or `checked_*` call's) first string
    /// argument, e.g. `"AppBreaks"` or `"Process::setup_mpu cache hit"`.
    pub name: String,
    /// Where the marker appears.
    pub span: Span,
}

/// Builds the whole-workspace obligation registry the runtime verifier
/// uses — every crate's registrations at minimal density (the cross-check
/// only needs the *names*, not the discharge work).
pub fn workspace_registry() -> Registry {
    let mut registry = Registry::new();
    tt_legacy::obligations::register_obligations(&mut registry, BugVariant::Fixed, 1);
    ticktock::obligations::register_obligations(&mut registry, 1);
    tt_fluxarm::contracts::register_obligations(&mut registry, 1);
    tt_kernel::obligations::register_obligations(&mut registry, 1);
    tt_kernel::recovery::register_obligations(&mut registry, 1);
    tt_kernel::explore::register_obligations(&mut registry, 1);
    tt_hw::obligations::register_obligations(&mut registry, 1);
    registry
}

/// Reads the first string literal at or after `col` on raw line `idx`,
/// scanning forward a few lines (macro arguments often wrap).
fn first_string_literal(raw: &[String], idx: usize, col: usize) -> Option<String> {
    for (n, line) in raw.iter().enumerate().skip(idx).take(6) {
        let start = if n == idx { col } else { 0 };
        let bytes = line.as_bytes();
        let mut i = start;
        while i < bytes.len() {
            if bytes[i] == b'"' {
                let mut j = i + 1;
                let mut out = String::new();
                while j < bytes.len() {
                    match bytes[j] {
                        b'\\' => {
                            if j + 1 < bytes.len() {
                                out.push(bytes[j + 1] as char);
                            }
                            j += 2;
                        }
                        b'"' => return Some(out),
                        c => {
                            out.push(c as char);
                            j += 1;
                        }
                    }
                }
                return None; // Unterminated on this line: give up.
            }
            i += 1;
        }
    }
    None
}

/// Extracts the contract sites from one scanned file.
pub fn extract_sites(file: &ScannedFile) -> Vec<Site> {
    let mut sites = Vec::new();
    if EXEMPT_PREFIXES.iter().any(|p| file.rel_path.starts_with(p)) {
        return sites;
    }
    for (idx, code) in file.code.iter().enumerate() {
        for marker in SITE_MARKERS {
            let mut from = 0;
            while let Some(rel) = code[from..].find(marker) {
                let at = from + rel;
                from = at + marker.len();
                // Identifier boundary on the left; a call `(` on the right;
                // not the marker's own definition (`fn checked_add(`).
                let before_ok = at == 0 || {
                    let c = code.as_bytes()[at - 1];
                    !(c.is_ascii_alphanumeric() || c == b'_')
                };
                let after_ok = code[at + marker.len()..].trim_start().starts_with('(');
                if !before_ok || !after_ok || find_token(code, "fn").is_some() {
                    continue;
                }
                // The code view's columns match the raw line up to the first
                // string literal, and the marker precedes its argument.
                let raw_col = file.raw[idx].find(marker).unwrap_or(0);
                if let Some(name) = first_string_literal(&file.raw, idx, raw_col) {
                    sites.push(Site {
                        name,
                        span: Span {
                            file: file.rel_path.clone(),
                            line: idx + 1,
                        },
                    });
                }
            }
        }
    }
    sites
}

/// The comparable forms of a site name: the full first token, plus its
/// `Type` / `method` halves when path-qualified. (Site names may carry a
/// human-readable tail — `"Process::setup_mpu cache hit: ..."` — which the
/// first-token split discards.)
pub(crate) fn site_candidates(name: &str) -> Vec<&str> {
    let first = name.split_whitespace().next().unwrap_or(name);
    let mut out = vec![first];
    if let Some((ty, method)) = first.split_once("::") {
        out.push(ty);
        out.push(method);
    }
    out
}

/// The comparable forms of a registered obligation's function name:
/// full, parenthesis-stripped (`encode_permissions(arm)` →
/// `encode_permissions`), and the `Type` / `method` halves.
pub(crate) fn obligation_keys(function: &str) -> Vec<&str> {
    let stripped = function.split('(').next().unwrap_or(function);
    let mut out = vec![function, stripped];
    if let Some((ty, method)) = stripped.split_once("::") {
        out.push(ty);
        out.push(method);
    }
    out.sort_unstable();
    out.dedup();
    out
}

/// Runs the cross-check: sources vs. the given registry.
pub fn audit_against(
    files: &[ScannedFile],
    registry: &Registry,
    config: &AuditConfig,
) -> Vec<Finding> {
    let mut findings = Vec::new();

    // Key index over the registry.
    let mut keys: BTreeSet<&str> = BTreeSet::new();
    for o in registry.obligations() {
        keys.extend(obligation_keys(&o.function));
    }

    // Direction 1: every site must be registered. While walking, remember
    // every site candidate — an obligation matched by a live site is, by
    // the same token, alive for direction 2.
    let sites: Vec<Site> = files.iter().flat_map(extract_sites).collect();
    let mut site_cands: BTreeSet<String> = BTreeSet::new();
    for site in &sites {
        let cands = site_candidates(&site.name);
        site_cands.extend(cands.iter().map(|c| c.to_string()));
        if cands.iter().any(|c| keys.contains(c)) {
            continue;
        }
        if config
            .allow_unregistered
            .iter()
            .any(|a| cands.contains(&a.as_str()) || a == &site.name)
        {
            continue;
        }
        findings.push(Finding {
            pass: Pass::Crosscheck,
            span: Some(site.span.clone()),
            message: format!(
                "contract site `{}` has no registered obligation \
                 (register it in the component's obligations module or \
                 allowlist it under [crosscheck] allow_unregistered)",
                site.name
            ),
        });
    }

    // Identifier index over the code view, for the liveness test.
    let mut idents: BTreeSet<String> = BTreeSet::new();
    let mut fn_names: BTreeSet<&str> = BTreeSet::new();
    for file in files {
        for f in &file.fns {
            fn_names.insert(&f.name);
        }
        for code in &file.code {
            let mut cur = String::new();
            for c in code.chars() {
                if c.is_alphanumeric() || c == '_' {
                    cur.push(c);
                } else if !cur.is_empty() {
                    idents.insert(std::mem::take(&mut cur));
                }
            }
            if !cur.is_empty() {
                idents.insert(cur);
            }
        }
    }

    // Direction 2: every non-trusted obligation must anchor to live code.
    let mut reported: BTreeSet<&str> = BTreeSet::new();
    for o in registry.obligations() {
        if o.trusted || !reported.insert(&o.function) {
            continue;
        }
        let stripped = o.function.split('(').next().unwrap_or(&o.function);
        let (ty, method) = match stripped.split_once("::") {
            Some((t, m)) => (Some(t), m),
            None => (None, stripped),
        };
        let alive = fn_names.contains(method)
            || fn_names.contains(stripped)
            || ty.is_some_and(|t| idents.contains(t))
            // Named by a live contract site (e.g. the `legacy::alloc`
            // checked-arithmetic obligations, whose names are site names).
            || obligation_keys(&o.function)
                .iter()
                .any(|k| site_cands.contains(*k));
        if alive {
            continue;
        }
        if config
            .allow_dead
            .iter()
            .any(|a| a == &o.function || a == stripped)
        {
            continue;
        }
        findings.push(Finding {
            pass: Pass::Crosscheck,
            span: None,
            message: format!(
                "registered obligation `{}` (component `{}`) matches no live \
                 code — dead spec (remove it or allowlist it under \
                 [crosscheck] allow_dead)",
                o.function, o.component
            ),
        });
    }

    findings
}

/// Runs the cross-check against the full workspace registry.
pub fn audit(files: &[ScannedFile], config: &AuditConfig) -> Vec<Finding> {
    audit_against(files, &workspace_registry(), config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::scan_text;
    use tt_contracts::obligation::CheckResult;
    use tt_contracts::ContractKind;

    fn registry() -> Registry {
        let mut r = Registry::new();
        r.add_fn("k", "AppBreaks::invariant", ContractKind::Invariant, || {
            CheckResult::Verified { cases: 1 }
        });
        r.add_fn("k", "Arm7::adds_reg", ContractKind::Post, || {
            CheckResult::Verified { cases: 1 }
        });
        r.add_builtin_safety("k", &["encode_permissions(arm)"]);
        r
    }

    const SRC: &str = "\
pub struct AppBreaks;\n\
impl AppBreaks {\n\
    fn check(&self) {\n\
        tt_contracts::invariant!(\"AppBreaks\", self.ok());\n\
    }\n\
}\n\
pub fn adds_reg(a: u32) {\n\
    tt_contracts::requires!(\n\
        \"adds_reg\",\n\
        a < 16,\n\
    );\n\
}\n\
pub fn encode_permissions(x: u8) -> u8 {\n\
    tt_contracts::checked_add(\"encode_permissions\", x, 1)\n\
}\n";

    #[test]
    fn sites_are_extracted_across_wrapped_lines() {
        let f = scan_text("crates/k/src/lib.rs", SRC);
        let names: Vec<String> = extract_sites(&f).into_iter().map(|s| s.name).collect();
        assert_eq!(names, vec!["AppBreaks", "adds_reg", "encode_permissions"]);
    }

    #[test]
    fn registered_sites_pass_via_full_type_or_method_match() {
        let f = scan_text("crates/k/src/lib.rs", SRC);
        let findings = audit_against(&[f], &registry(), &AuditConfig::default());
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn unregistered_site_is_flagged_with_span() {
        let f = scan_text(
            "crates/k/src/lib.rs",
            "pub fn ghost() {\n    tt_contracts::ensures!(\"ghost_site\", true);\n}\n",
        );
        let findings = audit_against(&[f], &registry(), &AuditConfig::default());
        // The registry's own obligations are dead in this one-fn tree;
        // the site finding is the one with a span.
        let sited: Vec<&Finding> = findings.iter().filter(|x| x.span.is_some()).collect();
        assert_eq!(sited.len(), 1, "{findings:?}");
        assert!(sited[0].message.contains("ghost_site"));
        assert_eq!(sited[0].span.as_ref().unwrap().line, 2);
    }

    #[test]
    fn allow_unregistered_suppresses_the_site() {
        let f = scan_text(
            "crates/k/src/lib.rs",
            "pub fn buggy() {\n    tt_contracts::ensures!(\"sys_tick_isr_buggy\", true);\n}\n",
        );
        let cfg = AuditConfig {
            allow_unregistered: vec!["sys_tick_isr_buggy".into()],
            ..Default::default()
        };
        let findings = audit_against(&[f], &registry(), &cfg);
        assert!(
            findings.iter().all(|x| x.span.is_none()),
            "site still flagged: {findings:?}"
        );
    }

    #[test]
    fn dead_obligation_is_flagged_and_allowlist_works() {
        let f = scan_text("crates/k/src/lib.rs", "pub fn unrelated() {}\n");
        let findings = audit_against(
            std::slice::from_ref(&f),
            &registry(),
            &AuditConfig::default(),
        );
        // All three registered functions are dead in this tiny tree.
        assert_eq!(findings.len(), 3, "{findings:?}");
        assert!(findings.iter().all(|x| x.span.is_none()));
        let cfg = AuditConfig {
            allow_dead: vec![
                "AppBreaks::invariant".into(),
                "Arm7::adds_reg".into(),
                "encode_permissions".into(),
            ],
            ..Default::default()
        };
        assert!(audit_against(&[f], &registry(), &cfg).is_empty());
    }

    #[test]
    fn trusted_obligations_are_exempt_from_the_dead_check() {
        let mut r = Registry::new();
        r.add_trusted("k", "Memory::refined_get", ContractKind::Post);
        let f = scan_text("crates/k/src/lib.rs", "pub fn unrelated() {}\n");
        assert!(audit_against(&[f], &r, &AuditConfig::default()).is_empty());
    }

    #[test]
    fn contracts_crate_sources_are_exempt_from_site_extraction() {
        let f = scan_text(
            "crates/contracts/src/lib.rs",
            "pub fn demo() {\n    invariant!(\"synthetic\", true);\n}\n",
        );
        assert!(extract_sites(&f).is_empty());
    }
}
