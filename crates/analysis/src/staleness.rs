//! Pass 4: the allowlist staleness lint.
//!
//! The allowlist (`ci/tcb_allowlist.toml`) is the declared TCB — but the
//! declaration itself can rot. A file whose last `unsafe` block was
//! refactored away, a `path::fn` entry whose function was renamed, a
//! crosscheck exemption for a site that no longer exists: each is an
//! allowlist entry silently granting trust that nothing claims. That's the
//! inverse failure of the TCB audit (which catches *undeclared* trust),
//! and exactly the staleness the incremental cache must also never mask —
//! so this pass re-derives entry liveness from the scanned sources on
//! every run and is never served from the verdict cache.
//!
//! Rules:
//!
//! * `[tcb] trusted` file/dir entries must match at least one audited
//!   source file, and the matched scope must still contain a TCB
//!   construct (`unsafe`, a raw register-store token, a raw-pointer op,
//!   or a `*mut`/`*const` type).
//! * `[tcb] trusted` `path::fn` entries must resolve to an existing
//!   function whose body still contains such a construct.
//! * `[crosscheck] allow_unregistered` entries must match a contract site
//!   extracted from the tree.
//! * `[crosscheck] allow_dead` entries must match a registered obligation.
//!
//! Stale entries are reported as findings *and* collected as
//! [`StaleEntry`] records so `tt-audit` can print a `--fix`-style removal
//! listing.

use crate::config::AuditConfig;
use crate::crosscheck;
use crate::findings::{Finding, Pass};
use crate::source::{find_token, ScannedFile};
use crate::tcb::{RAW_POINTER_OPS, REGISTER_STORES};
use tt_contracts::obligation::Registry;

/// One stale allowlist entry: enough to print a removal instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StaleEntry {
    /// The allowlist key the entry lives under (`"[tcb] trusted"`,
    /// `"[crosscheck] allow_unregistered"`, `"[crosscheck] allow_dead"`).
    pub section: &'static str,
    /// The entry string, verbatim as it appears in the TOML array.
    pub entry: String,
    /// Why the entry is stale.
    pub reason: String,
}

impl StaleEntry {
    /// Renders the entry as an audit finding.
    pub fn to_finding(&self) -> Finding {
        Finding {
            pass: Pass::Staleness,
            span: None,
            message: format!(
                "stale allowlist entry `\"{}\"` under {}: {} — remove it from \
                 ci/tcb_allowlist.toml (or restore the construct it declares)",
                self.entry, self.section, self.reason
            ),
        }
    }
}

/// Whether one stripped code line contains a TCB construct — the same
/// token set the TCB audit flags, plus the defining occurrences (a
/// trusted register file *defines* `write_rbar`; that definition is what
/// the entry exists to cover).
fn line_has_construct(code: &str) -> bool {
    if find_token(code, "unsafe").is_some() {
        return true;
    }
    if code.contains("*mut ") || code.contains("*const ") {
        return true;
    }
    REGISTER_STORES
        .iter()
        .chain(RAW_POINTER_OPS)
        .any(|t| find_token(code, t).is_some())
}

/// Whether any line in `lines` contains a TCB construct.
fn any_construct(lines: &[String]) -> bool {
    lines.iter().any(|l| line_has_construct(l))
}

/// Audits the `[tcb] trusted` entries against the scanned tree.
fn stale_trusted(files: &[ScannedFile], config: &AuditConfig) -> Vec<StaleEntry> {
    let mut out = Vec::new();
    for entry in &config.trusted {
        let stale = |reason: String| StaleEntry {
            section: "[tcb] trusted",
            entry: entry.clone(),
            reason,
        };
        if let Some((path, func)) = entry.split_once("::") {
            let Some(file) = files.iter().find(|f| f.rel_path == path) else {
                out.push(stale(format!("file `{path}` is not in the audited tree")));
                continue;
            };
            let Some(span) = file.fns.iter().find(|f| f.name == func) else {
                out.push(stale(format!("no function `{func}` in `{path}`")));
                continue;
            };
            if !any_construct(&file.code[span.start - 1..span.end]) {
                out.push(stale(format!(
                    "`{func}` no longer contains an unsafe/raw-store construct"
                )));
            }
        } else {
            let prefix = format!("{}/", entry.trim_end_matches('/'));
            let matched: Vec<&ScannedFile> = files
                .iter()
                .filter(|f| f.rel_path == *entry || f.rel_path.starts_with(&prefix))
                .collect();
            if matched.is_empty() {
                out.push(stale("matches no audited source file".into()));
            } else if !matched.iter().any(|f| any_construct(&f.code)) {
                out.push(stale(
                    "no unsafe/raw-store construct remains in the trusted scope".into(),
                ));
            }
        }
    }
    out
}

/// Audits the `[crosscheck]` exemption lists against sites and registry.
fn stale_crosscheck(
    files: &[ScannedFile],
    registry: &Registry,
    config: &AuditConfig,
) -> Vec<StaleEntry> {
    let mut out = Vec::new();
    let sites: Vec<crosscheck::Site> = files.iter().flat_map(crosscheck::extract_sites).collect();
    for entry in &config.allow_unregistered {
        let live = sites.iter().any(|s| {
            s.name == *entry || crosscheck::site_candidates(&s.name).contains(&entry.as_str())
        });
        if !live {
            out.push(StaleEntry {
                section: "[crosscheck] allow_unregistered",
                entry: entry.clone(),
                reason: "matches no contract site in the tree".into(),
            });
        }
    }
    for entry in &config.allow_dead {
        let live = registry.obligations().iter().any(|o| {
            o.function == *entry
                || crosscheck::obligation_keys(&o.function).contains(&entry.as_str())
        });
        if !live {
            out.push(StaleEntry {
                section: "[crosscheck] allow_dead",
                entry: entry.clone(),
                reason: "matches no registered obligation".into(),
            });
        }
    }
    out
}

/// Collects every stale allowlist entry, checking the crosscheck
/// exemptions against the given registry.
pub fn stale_entries_against(
    files: &[ScannedFile],
    registry: &Registry,
    config: &AuditConfig,
) -> Vec<StaleEntry> {
    let mut out = stale_trusted(files, config);
    out.extend(stale_crosscheck(files, registry, config));
    out
}

/// Collects every stale allowlist entry against the workspace registry.
pub fn stale_entries(files: &[ScannedFile], config: &AuditConfig) -> Vec<StaleEntry> {
    stale_entries_against(files, &crosscheck::workspace_registry(), config)
}

/// Runs the staleness pass, rendering stale entries as findings.
pub fn audit(files: &[ScannedFile], config: &AuditConfig) -> Vec<Finding> {
    stale_entries(files, config)
        .iter()
        .map(StaleEntry::to_finding)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::scan_text;
    use tt_contracts::obligation::CheckResult;
    use tt_contracts::ContractKind;

    const TRUSTED_SRC: &str = "pub fn commit(hw: &mut Hw) {\n    hw.write_rbar(0);\n}\n\
                               pub fn helper() {\n    let x = 1;\n}\n";

    fn cfg(trusted: &[&str]) -> AuditConfig {
        AuditConfig {
            trusted: trusted.iter().map(|s| s.to_string()).collect(),
            ..Default::default()
        }
    }

    #[test]
    fn live_file_and_fn_entries_pass() {
        let f = scan_text("crates/x/src/lib.rs", TRUSTED_SRC);
        let r = Registry::new();
        assert!(stale_entries_against(
            std::slice::from_ref(&f),
            &r,
            &cfg(&["crates/x/src/lib.rs", "crates/x/src/lib.rs::commit"])
        )
        .is_empty());
    }

    #[test]
    fn missing_file_entry_is_stale() {
        let f = scan_text("crates/x/src/lib.rs", TRUSTED_SRC);
        let got = stale_entries_against(&[f], &Registry::new(), &cfg(&["crates/gone/src/old.rs"]));
        assert_eq!(got.len(), 1);
        assert!(
            got[0].reason.contains("matches no audited source file"),
            "{got:?}"
        );
        // A `path::fn` entry on a missing file names the file.
        let f2 = scan_text("crates/x/src/lib.rs", TRUSTED_SRC);
        let got = stale_entries_against(
            &[f2],
            &Registry::new(),
            &cfg(&["crates/gone/src/old.rs::commit"]),
        );
        assert_eq!(got.len(), 1);
        assert!(got[0].reason.contains("not in the audited tree"), "{got:?}");
    }

    #[test]
    fn renamed_fn_entry_is_stale() {
        let f = scan_text("crates/x/src/lib.rs", TRUSTED_SRC);
        let got = stale_entries_against(
            &[f],
            &Registry::new(),
            &cfg(&["crates/x/src/lib.rs::old_commit"]),
        );
        assert_eq!(got.len(), 1);
        assert!(
            got[0].reason.contains("no function `old_commit`"),
            "{got:?}"
        );
    }

    #[test]
    fn constructless_scope_is_a_dead_entry() {
        let f = scan_text("crates/x/src/lib.rs", TRUSTED_SRC);
        // `helper` contains no unsafe/raw-store construct: declared trust
        // with nothing to trust.
        let got = stale_entries_against(
            std::slice::from_ref(&f),
            &Registry::new(),
            &cfg(&["crates/x/src/lib.rs::helper"]),
        );
        assert_eq!(got.len(), 1);
        assert!(got[0].reason.contains("no longer contains"), "{got:?}");
        // Same for a whole file with no construct anywhere.
        let clean = scan_text("crates/y/src/lib.rs", "pub fn pure() -> u32 { 1 }\n");
        let got = stale_entries_against(&[clean], &Registry::new(), &cfg(&["crates/y/src/lib.rs"]));
        assert_eq!(got.len(), 1);
        assert!(got[0].reason.contains("no unsafe/raw-store construct"));
    }

    #[test]
    fn defining_a_register_store_keeps_a_file_entry_live() {
        // The register files *define* write_rbar — that is the construct
        // the whole-file entry exists for.
        let f = scan_text(
            "crates/hw/src/mpu.rs",
            "pub fn write_rbar(&mut self, v: u32) {\n    self.rbar = v;\n}\n",
        );
        assert!(
            stale_entries_against(&[f], &Registry::new(), &cfg(&["crates/hw/src/mpu.rs"]))
                .is_empty()
        );
    }

    #[test]
    fn crosscheck_exemptions_go_stale_with_their_targets() {
        let f = scan_text(
            "crates/k/src/lib.rs",
            "pub fn buggy() {\n    tt_contracts::ensures!(\"sys_tick_isr_buggy\", true);\n}\n",
        );
        let mut r = Registry::new();
        r.add_fn("k", "Live::fn", ContractKind::Post, || {
            CheckResult::Verified { cases: 1 }
        });
        let config = AuditConfig {
            allow_unregistered: vec!["sys_tick_isr_buggy".into(), "ghost_site".into()],
            allow_dead: vec!["Live::fn".into(), "Gone::fn".into()],
            ..Default::default()
        };
        let got = stale_entries_against(&[f], &r, &config);
        let entries: Vec<&str> = got.iter().map(|e| e.entry.as_str()).collect();
        assert_eq!(entries, vec!["ghost_site", "Gone::fn"], "{got:?}");
    }

    #[test]
    fn findings_name_the_entry_and_the_fix() {
        let got = stale_entries_against(&[], &Registry::new(), &cfg(&["crates/gone/src/old.rs"]));
        let f = got[0].to_finding();
        assert_eq!(f.pass, Pass::Staleness);
        assert!(f.message.contains("crates/gone/src/old.rs"));
        assert!(f.message.contains("remove it from ci/tcb_allowlist.toml"));
    }
}
