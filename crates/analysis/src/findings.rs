//! Audit findings: one diagnostic per violated rule, with a `file:line`
//! span wherever the rule anchors to source.

use crate::source::Span;

/// Which audit pass produced a finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Pass {
    /// TCB audit: unsafe code / raw register stores / raw pointer (DMA)
    /// operations outside the allowlisted trusted modules.
    Tcb,
    /// Invariant-coverage lint: public mutators returning without
    /// discharging `check_invariants()`.
    Coverage,
    /// Obligation cross-check: contract sites without a registered
    /// obligation, and registered obligations with no live code.
    Crosscheck,
    /// Allowlist staleness lint: `ci/tcb_allowlist.toml` entries whose
    /// target no longer contains the declared construct — silent TCB rot.
    Staleness,
}

impl Pass {
    /// The pass's CLI name (`--pass` value and diagnostic tag).
    pub fn name(self) -> &'static str {
        match self {
            Pass::Tcb => "tcb",
            Pass::Coverage => "coverage",
            Pass::Crosscheck => "crosscheck",
            Pass::Staleness => "staleness",
        }
    }
}

/// One diagnostic.
#[derive(Debug, Clone)]
pub struct Finding {
    /// The pass that raised it.
    pub pass: Pass,
    /// Source anchor (`None` for registry-side findings with no span).
    pub span: Option<Span>,
    /// Human-readable description of the violation.
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.span {
            Some(span) => write!(f, "{span}: [{}] {}", self.pass.name(), self.message),
            None => write!(f, "registry: [{}] {}", self.pass.name(), self.message),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn findings_render_as_file_line_diagnostics() {
        let f = Finding {
            pass: Pass::Tcb,
            span: Some(Span {
                file: "crates/x/src/lib.rs".into(),
                line: 7,
            }),
            message: "`unsafe` outside the trusted computing base".into(),
        };
        assert_eq!(
            f.to_string(),
            "crates/x/src/lib.rs:7: [tcb] `unsafe` outside the trusted computing base"
        );
        let g = Finding {
            pass: Pass::Crosscheck,
            span: None,
            message: "dead obligation".into(),
        };
        assert!(g.to_string().starts_with("registry: [crosscheck]"));
    }
}
