//! The Fig.-10-style audit report.
//!
//! The paper's Figure 10 counts, per component, source LOC, functions
//! (trusted subset) and spec LOC (trusted subset). Earlier PRs computed
//! those with `tt_contracts::effort`; this module adds the number the
//! audit is really about — **trusted LOC**, the lines inside the declared
//! TCB (allowlisted files/functions plus `// TRUSTED:`-marked functions) —
//! and emits the whole table as `BENCH_fig10.json`, so the benchmark
//! figures are *generated from the audit* rather than hand-maintained.

use std::path::Path;

use crate::config::AuditConfig;
use crate::findings::{Finding, Pass};
use crate::source::ScannedFile;
use crate::staleness::StaleEntry;
use tt_contracts::effort::{default_components, scan_path, EffortCounts};

/// Incremental-cache statistics for one cached audit run
/// ([`crate::audit::run_cached`]); serialized into `BENCH_fig10.json`.
#[derive(Debug, Clone, Default)]
pub struct CacheStats {
    /// Whether the verdict cache loaded warm (valid file, matching
    /// toolchain/config hash).
    pub warm: bool,
    /// Cache lookup hit rate for this run.
    pub hit_rate: f64,
    /// Wall-clock of scan + passes for this run, in milliseconds.
    pub wall_ms: f64,
    /// The cold-run wall recorded in the cache header, in milliseconds.
    pub cold_wall_ms: f64,
    /// Files served from cache in the TCB pass.
    pub skipped_tcb: usize,
    /// Files served from cache in the coverage pass.
    pub skipped_coverage: usize,
    /// 1 if the whole-workspace cross-check verdict hit, else 0.
    pub skipped_crosscheck: usize,
    /// Set when a cache file existed but failed validation (the run then
    /// degraded to cold — never partial reuse).
    pub corrupt: Option<String>,
}

/// One component row: the classic Fig. 10 counters plus TCB accounting.
#[derive(Debug, Clone)]
pub struct ComponentRow {
    /// Component name (`"Kernel"`, `"ARM MPU"`, ...).
    pub name: &'static str,
    /// The Fig. 10 counters, computed by `tt_contracts::effort`.
    pub counts: EffortCounts,
    /// Lines inside the declared TCB: whole allowlisted files, plus
    /// allowlisted or `// TRUSTED:`-marked functions elsewhere.
    pub trusted_loc: usize,
}

/// The complete audit report: table rows plus the pass results.
#[derive(Debug, Clone)]
pub struct AuditReport {
    /// Per-component rows.
    pub rows: Vec<ComponentRow>,
    /// Workspace totals of the Fig. 10 counters.
    pub total: EffortCounts,
    /// Workspace total trusted LOC.
    pub total_trusted_loc: usize,
    /// All findings from the executed passes.
    pub findings: Vec<Finding>,
    /// Stale allowlist entries from the staleness pass (duplicated as
    /// findings; kept structured for the `--fix`-style removal listing).
    pub stale_entries: Vec<StaleEntry>,
    /// Verdict-cache statistics when the audit ran incrementally.
    pub cache: Option<CacheStats>,
}

impl AuditReport {
    /// Whether the audit is clean (gates CI with `--check`).
    pub fn clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Number of findings from one pass.
    pub fn count(&self, pass: Pass) -> usize {
        self.findings.iter().filter(|f| f.pass == pass).count()
    }
}

/// Trusted LOC contributed by one scanned file under the allowlist.
fn trusted_loc_of(file: &ScannedFile, config: &AuditConfig) -> usize {
    if config.is_trusted_file(&file.rel_path) {
        // Whole file in the TCB: count its non-blank lines.
        return file.raw.iter().filter(|l| !l.trim().is_empty()).count();
    }
    file.fns
        .iter()
        .filter(|f| f.trusted || config.is_trusted(&file.rel_path, Some(&f.name)))
        .map(|f| f.loc)
        .sum()
}

/// Computes the component rows: Fig. 10 counters via `tt_contracts::effort`
/// (so the numbers stay comparable with earlier PRs) plus trusted LOC from
/// the scanned files and the allowlist.
pub fn component_rows(
    root: &Path,
    files: &[ScannedFile],
    config: &AuditConfig,
) -> (Vec<ComponentRow>, EffortCounts, usize) {
    let mut rows = Vec::new();
    let mut total = EffortCounts::default();
    let mut total_trusted = 0usize;
    for spec in default_components(root) {
        let mut counts = EffortCounts::default();
        let mut trusted_loc = 0usize;
        for p in &spec.paths {
            counts = {
                let mut c = counts;
                let scanned = scan_path(p);
                c.source_loc += scanned.source_loc;
                c.fns += scanned.fns;
                c.trusted_fns += scanned.trusted_fns;
                c.spec_loc += scanned.spec_loc;
                c.trusted_spec_loc += scanned.trusted_spec_loc;
                c
            };
            // Workspace-relative prefix of this component path.
            let rel = p
                .strip_prefix(root)
                .unwrap_or(p)
                .to_string_lossy()
                .replace('\\', "/");
            for file in files {
                let in_component = file.rel_path == rel
                    || file
                        .rel_path
                        .starts_with(&format!("{}/", rel.trim_end_matches('/')));
                if in_component {
                    trusted_loc += trusted_loc_of(file, config);
                }
            }
        }
        total.source_loc += counts.source_loc;
        total.fns += counts.fns;
        total.trusted_fns += counts.trusted_fns;
        total.spec_loc += counts.spec_loc;
        total.trusted_spec_loc += counts.trusted_spec_loc;
        total_trusted += trusted_loc;
        rows.push(ComponentRow {
            name: spec.name,
            counts,
            trusted_loc,
        });
    }
    (rows, total, total_trusted)
}

/// Escapes a string for a JSON string literal.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn row_json(name: &str, c: &EffortCounts, trusted_loc: usize) -> String {
    format!(
        "{{\"name\": \"{}\", \"source_loc\": {}, \"fns\": {}, \"trusted_fns\": {}, \
         \"spec_loc\": {}, \"trusted_spec_loc\": {}, \"trusted_loc\": {}}}",
        escape(name),
        c.source_loc,
        c.fns,
        c.trusted_fns,
        c.spec_loc,
        c.trusted_spec_loc,
        trusted_loc
    )
}

/// Renders the report as the `BENCH_fig10.json` document.
pub fn to_json(report: &AuditReport) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"bench\": \"fig10_proof_effort\",\n");
    out.push_str("  \"generator\": \"tt-audit\",\n");
    out.push_str("  \"components\": [\n");
    for (i, row) in report.rows.iter().enumerate() {
        out.push_str("    ");
        out.push_str(&row_json(row.name, &row.counts, row.trusted_loc));
        out.push_str(if i + 1 < report.rows.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    out.push_str("  ],\n  \"total\": ");
    out.push_str(&row_json("Total", &report.total, report.total_trusted_loc));
    out.push_str(",\n  \"audit\": {");
    out.push_str(&format!(
        "\"findings\": {}, \"tcb\": {}, \"coverage\": {}, \"crosscheck\": {}, \
         \"staleness\": {}, \"clean\": {}",
        report.findings.len(),
        report.count(Pass::Tcb),
        report.count(Pass::Coverage),
        report.count(Pass::Crosscheck),
        report.count(Pass::Staleness),
        report.clean()
    ));
    out.push('}');
    if let Some(c) = &report.cache {
        out.push_str(&format!(
            ",\n  \"cache\": {{\"mode\": \"{}\", \"cache_hit_rate\": {:.4}, \
             \"wall_ms\": {:.3}, \"cold_wall_ms\": {:.3}, \"skipped\": \
             {{\"tcb\": {}, \"coverage\": {}, \"crosscheck\": {}}}}}",
            if c.warm { "warm" } else { "cold" },
            c.hit_rate,
            c.wall_ms,
            c.cold_wall_ms,
            c.skipped_tcb,
            c.skipped_coverage,
            c.skipped_crosscheck,
        ));
    }
    out.push_str("\n}\n");
    out
}

/// Renders the report as a human-readable table (the `tt-audit` default).
pub fn render_table(report: &AuditReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<12} {:>8} {:>14} {:>16} {:>12}\n",
        "Component", "Source", "Fns(Trusted)", "Specs(Trusted)", "TrustedLOC"
    ));
    let fmt_row = |name: &str, c: &EffortCounts, t: usize| {
        format!(
            "{:<12} {:>8} {:>9} ({:>2}) {:>11} ({:>2}) {:>12}\n",
            name, c.source_loc, c.fns, c.trusted_fns, c.spec_loc, c.trusted_spec_loc, t
        )
    };
    for row in &report.rows {
        out.push_str(&fmt_row(row.name, &row.counts, row.trusted_loc));
    }
    out.push_str(&fmt_row("Total", &report.total, report.total_trusted_loc));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::scan_text;

    fn sample_report() -> AuditReport {
        AuditReport {
            rows: vec![ComponentRow {
                name: "Kernel",
                counts: EffortCounts {
                    source_loc: 100,
                    fns: 10,
                    trusted_fns: 1,
                    spec_loc: 20,
                    trusted_spec_loc: 2,
                },
                trusted_loc: 15,
            }],
            total: EffortCounts {
                source_loc: 100,
                fns: 10,
                trusted_fns: 1,
                spec_loc: 20,
                trusted_spec_loc: 2,
            },
            total_trusted_loc: 15,
            findings: Vec::new(),
            stale_entries: Vec::new(),
            cache: None,
        }
    }

    #[test]
    fn json_has_component_rows_and_audit_summary() {
        let doc = to_json(&sample_report());
        assert!(doc.contains("\"name\": \"Kernel\""));
        assert!(doc.contains("\"trusted_loc\": 15"));
        assert!(doc.contains("\"clean\": true"));
        assert!(doc.contains("\"bench\": \"fig10_proof_effort\""));
        // Balanced braces — a cheap well-formedness check.
        assert_eq!(doc.matches('{').count(), doc.matches('}').count(), "{doc}");
    }

    #[test]
    fn findings_flip_the_clean_flag() {
        let mut r = sample_report();
        r.findings.push(Finding {
            pass: Pass::Tcb,
            span: None,
            message: "x".into(),
        });
        assert!(!r.clean());
        assert_eq!(r.count(Pass::Tcb), 1);
        assert!(to_json(&r).contains("\"clean\": false"));
    }

    #[test]
    fn trusted_loc_counts_files_and_marked_fns() {
        let src = "pub fn a() {\n    work();\n}\n\n// TRUSTED: commit path.\npub fn b() {\n    raw();\n}\n";
        let file = scan_text("crates/x/src/lib.rs", src);
        // Marker only: just fn b (3 non-blank lines incl. signature+brace).
        let cfg = AuditConfig::default();
        assert_eq!(trusted_loc_of(&file, &cfg), 3);
        // Whole file allowlisted: every non-blank line (marker line too).
        let cfg = AuditConfig {
            trusted: vec!["crates/x/src/lib.rs".into()],
            ..Default::default()
        };
        assert_eq!(trusted_loc_of(&file, &cfg), 7);
        // Fn-level allowlist adds fn a.
        let cfg = AuditConfig {
            trusted: vec!["crates/x/src/lib.rs::a".into()],
            ..Default::default()
        };
        assert_eq!(trusted_loc_of(&file, &cfg), 6);
    }

    #[test]
    fn cache_section_appears_only_for_cached_runs() {
        let mut r = sample_report();
        assert!(!to_json(&r).contains("\"cache\""));
        r.cache = Some(CacheStats {
            warm: true,
            hit_rate: 1.0,
            wall_ms: 12.5,
            cold_wall_ms: 250.0,
            skipped_tcb: 40,
            skipped_coverage: 40,
            skipped_crosscheck: 1,
            corrupt: None,
        });
        let doc = to_json(&r);
        assert!(doc.contains("\"mode\": \"warm\""));
        assert!(doc.contains("\"cache_hit_rate\": 1.0000"));
        assert!(doc.contains("\"skipped\": {\"tcb\": 40, \"coverage\": 40, \"crosscheck\": 1}"));
        assert!(doc.contains("\"staleness\": 0"));
        assert_eq!(doc.matches('{').count(), doc.matches('}').count(), "{doc}");
    }

    #[test]
    fn table_lists_trusted_loc_column() {
        let t = render_table(&sample_report());
        assert!(t.contains("TrustedLOC"));
        assert!(t.contains("Total"));
    }
}
