//! Lexical Rust source scanning: the substrate every audit pass runs on.
//!
//! The build environment is dependency-frozen (no `syn`), so the scanner is
//! a small line-oriented lexer: it strips comments and string literals with
//! a cross-line state machine, truncates each file at its `#[cfg(test)]`
//! module (test modules sit at the end of every file in this codebase, the
//! same convention `tt_contracts::effort` relies on), and recovers `fn`
//! item spans by brace counting. That is deliberately *not* a full parser:
//! every pass tolerates over-approximation (a flagged line a human can
//! inspect) but never under-approximates the trusted surface — unmatched
//! constructs stay visible rather than vanishing.

use std::fs;
use std::path::{Path, PathBuf};

/// A source location in workspace-relative form, printable as `file:line`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// Workspace-relative path, `/`-separated.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
}

impl std::fmt::Display for Span {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}", self.file, self.line)
    }
}

/// One `fn` item recovered by the scanner.
#[derive(Debug, Clone)]
pub struct FnSpan {
    /// The function's name (the identifier after `fn`).
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub start: usize,
    /// 1-based line of the closing brace (inclusive).
    pub end: usize,
    /// Whether the item is `pub` (any visibility qualifier counts).
    pub is_pub: bool,
    /// Whether the signature takes `&mut self` (a mutator candidate).
    pub takes_mut_self: bool,
    /// Whether a `// TRUSTED:` marker comment precedes the item.
    pub trusted: bool,
    /// Non-blank code lines inside the span.
    pub loc: usize,
}

/// A scanned file: raw lines plus a code-only view (comments and string
/// contents removed) and the recovered `fn` spans.
#[derive(Debug, Clone)]
pub struct ScannedFile {
    /// Workspace-relative path, `/`-separated.
    pub rel_path: String,
    /// Original lines, test module excluded.
    pub raw: Vec<String>,
    /// Code-only lines (same indices as `raw`): comments stripped, string
    /// literals replaced by `""`.
    pub code: Vec<String>,
    /// Recovered function spans, in order of appearance.
    pub fns: Vec<FnSpan>,
}

/// Strips comments and string literals from `text`, preserving line
/// structure. String literals collapse to `""` so that tokens inside them
/// (an `unsafe` in a diagnostic message, a register name in a doc string)
/// never reach the pattern matchers.
pub fn strip_comments_and_strings(text: &str) -> Vec<String> {
    #[derive(PartialEq)]
    enum St {
        Code,
        Block(usize),
        Str,
        RawStr(usize),
        Char,
    }
    let mut state = St::Code;
    let mut out = Vec::new();
    for line in text.lines() {
        let b = line.as_bytes();
        let mut kept = String::with_capacity(line.len());
        let mut i = 0;
        while i < b.len() {
            match state {
                St::Code => {
                    if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'/' {
                        break; // Line comment: rest of line gone.
                    }
                    if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                        state = St::Block(1);
                        i += 2;
                        continue;
                    }
                    if b[i] == b'r'
                        && (i == 0 || !b[i - 1].is_ascii_alphanumeric() && b[i - 1] != b'_')
                    {
                        // Possible raw string r"..." or r#"..."#.
                        let mut j = i + 1;
                        let mut hashes = 0;
                        while j < b.len() && b[j] == b'#' {
                            hashes += 1;
                            j += 1;
                        }
                        if j < b.len() && b[j] == b'"' {
                            kept.push_str("\"\"");
                            state = St::RawStr(hashes);
                            i = j + 1;
                            continue;
                        }
                    }
                    if b[i] == b'"' {
                        kept.push_str("\"\"");
                        state = St::Str;
                        i += 1;
                        continue;
                    }
                    if b[i] == b'\'' {
                        // Char literal or lifetime. Lifetimes ('a) have an
                        // identifier char right after and no closing quote
                        // within two chars; treat `'x'` and escapes as chars.
                        let is_char = (i + 2 < b.len() && b[i + 2] == b'\'')
                            || (i + 1 < b.len() && b[i + 1] == b'\\');
                        if is_char {
                            kept.push_str("' '");
                            state = St::Char;
                            i += 1;
                            continue;
                        }
                    }
                    kept.push(b[i] as char);
                    i += 1;
                }
                St::Block(depth) => {
                    if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                        state = if depth == 1 {
                            St::Code
                        } else {
                            St::Block(depth - 1)
                        };
                        i += 2;
                    } else if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                        state = St::Block(depth + 1);
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                St::Str => {
                    if b[i] == b'\\' {
                        i += 2;
                    } else if b[i] == b'"' {
                        state = St::Code;
                        i += 1;
                    } else {
                        i += 1;
                    }
                }
                St::RawStr(hashes) => {
                    if b[i] == b'"' {
                        let mut j = i + 1;
                        let mut h = 0;
                        while j < b.len() && b[j] == b'#' && h < hashes {
                            h += 1;
                            j += 1;
                        }
                        if h == hashes {
                            state = St::Code;
                            i = j;
                            continue;
                        }
                    }
                    i += 1;
                }
                St::Char => {
                    if b[i] == b'\\' {
                        i += 2;
                    } else if b[i] == b'\'' {
                        state = St::Code;
                        i += 1;
                    } else {
                        i += 1;
                    }
                }
            }
        }
        out.push(kept);
        // A string/char cannot span lines (raw strings and block comments
        // can); reset the simple states at end of line.
        if state == St::Str || state == St::Char {
            state = St::Code;
        }
    }
    out
}

/// Truncates raw lines at the first `#[cfg(test)]` item, the repository's
/// end-of-file test-module convention.
fn without_test_module(lines: &[String]) -> usize {
    lines
        .iter()
        .position(|l| l.trim_start().starts_with("#[cfg(test)]"))
        .unwrap_or(lines.len())
}

/// Extracts the identifier after `fn ` on a code line, if any.
fn fn_name(code_line: &str) -> Option<String> {
    let at = find_token(code_line, "fn")?;
    let rest = &code_line[at + 2..];
    let rest = rest.trim_start();
    let end = rest
        .find(|c: char| !(c.is_alphanumeric() || c == '_'))
        .unwrap_or(rest.len());
    if end == 0 {
        return None;
    }
    Some(rest[..end].to_string())
}

/// Finds `token` in `line` at identifier boundaries (so `fn` does not match
/// inside `fn_name` or `dyn_fn`).
pub fn find_token(line: &str, token: &str) -> Option<usize> {
    let b = line.as_bytes();
    let mut from = 0;
    while let Some(rel) = line[from..].find(token) {
        let at = from + rel;
        let before_ok = at == 0 || {
            let c = b[at - 1];
            !(c.is_ascii_alphanumeric() || c == b'_')
        };
        let after = at + token.len();
        let after_ok = after >= b.len() || {
            let c = b[after];
            !(c.is_ascii_alphanumeric() || c == b'_')
        };
        if before_ok && after_ok {
            return Some(at);
        }
        from = at + 1;
    }
    None
}

/// Scans one source text into a [`ScannedFile`].
pub fn scan_text(rel_path: &str, text: &str) -> ScannedFile {
    let all_raw: Vec<String> = text.lines().map(str::to_string).collect();
    let cut = without_test_module(&all_raw);
    let raw: Vec<String> = all_raw[..cut].to_vec();
    let code = strip_comments_and_strings(&raw.join("\n"));
    let mut code = code;
    code.resize(raw.len(), String::new());

    // Recover fn spans by brace counting from each `fn` keyword.
    let mut fns = Vec::new();
    let mut depth: i64 = 0;
    let mut open: Vec<(String, usize, bool, bool, bool, i64)> = Vec::new();
    let mut pending_trusted = false;
    for (idx, cl) in code.iter().enumerate() {
        let raw_line = raw[idx].trim();
        if (raw_line.starts_with("//") || raw_line.starts_with("/*") || raw_line.starts_with('*'))
            && raw_line.contains("TRUSTED:")
        {
            pending_trusted = true;
        }
        if let Some(name) = fn_name(cl) {
            // The signature may span lines up to the opening brace; a
            // semicolon first means a trait method declaration (no body).
            let mut sig = String::new();
            for s in code.iter().skip(idx) {
                sig.push_str(s);
                sig.push(' ');
                if s.contains('{') || s.contains(';') {
                    break;
                }
            }
            if !sig[..sig.find('{').unwrap_or(sig.len())].contains(';') {
                let is_pub = cl.trim_start().starts_with("pub");
                let mut_self = sig[..sig.find('{').unwrap_or(sig.len())].contains("&mut self");
                open.push((name, idx + 1, is_pub, mut_self, pending_trusted, depth));
            }
            pending_trusted = false;
        }
        for ch in cl.chars() {
            match ch {
                '{' => depth += 1,
                '}' => {
                    depth -= 1;
                    // Any fn whose body opened above this depth closes here.
                    while let Some(&(_, _, _, _, _, d)) = open.last() {
                        if depth <= d {
                            let (name, start, is_pub, takes_mut_self, trusted, _) =
                                open.pop().unwrap();
                            let loc = raw[start - 1..=idx]
                                .iter()
                                .filter(|l| !l.trim().is_empty())
                                .count();
                            fns.push(FnSpan {
                                name,
                                start,
                                end: idx + 1,
                                is_pub,
                                takes_mut_self,
                                trusted,
                                loc,
                            });
                        } else {
                            break;
                        }
                    }
                }
                _ => {}
            }
        }
    }
    fns.sort_by_key(|f| f.start);
    ScannedFile {
        rel_path: rel_path.to_string(),
        raw,
        code,
        fns,
    }
}

/// Loads and scans one file, returning `None` on read failure.
pub fn scan_file(root: &Path, path: &Path) -> Option<ScannedFile> {
    let text = fs::read_to_string(path).ok()?;
    let rel = path
        .strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/");
    Some(scan_text(&rel, &text))
}

/// Walks the audited source set: `crates/*/src/**/*.rs` plus the top-level
/// `src/`. Vendored shims, `tests/`, `benches/`, `examples/` and build
/// output are outside the audit (they are not kernel code).
pub fn workspace_sources(root: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let crates = root.join("crates");
    if let Ok(entries) = fs::read_dir(&crates) {
        let mut dirs: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
        dirs.sort();
        for d in dirs {
            collect_rs(&d.join("src"), &mut out);
        }
    }
    collect_rs(&root.join("src"), &mut out);
    out.sort();
    out
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    let mut paths: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
    paths.sort();
    for p in paths {
        if p.is_dir() {
            collect_rs(&p, out);
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
//! Docs mentioning unsafe and write_rbar( in prose.

/// More docs.
pub fn outer(a: usize) -> usize {
    let s = "unsafe in a string";
    let _ = s;
    inner(a)
}

// TRUSTED: hardware commit path.
pub(crate) fn trusted_commit(&mut self) {
    self.x = 1;
}

fn inner(a: usize) -> usize {
    a + 1
}

#[cfg(test)]
mod tests {
    fn invisible() {}
}
"#;

    #[test]
    fn strings_and_comments_are_stripped() {
        let f = scan_text("s.rs", SAMPLE);
        let joined = f.code.join("\n");
        assert!(!joined.contains("unsafe"), "string content must be gone");
        assert!(!joined.contains("write_rbar"), "doc content must be gone");
        assert!(joined.contains("let s = \"\""));
    }

    #[test]
    fn fn_spans_are_recovered_with_attributes() {
        let f = scan_text("s.rs", SAMPLE);
        let names: Vec<&str> = f.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["outer", "trusted_commit", "inner"]);
        let outer = &f.fns[0];
        assert!(outer.is_pub && !outer.takes_mut_self && !outer.trusted);
        let trusted = &f.fns[1];
        assert!(trusted.is_pub && trusted.takes_mut_self && trusted.trusted);
        assert!(!f.fns[2].is_pub);
        assert!(outer.end > outer.start);
    }

    #[test]
    fn test_modules_are_excluded() {
        let f = scan_text("s.rs", SAMPLE);
        assert!(f.fns.iter().all(|f| f.name != "invisible"));
        assert!(!f.raw.join("\n").contains("invisible"));
    }

    #[test]
    fn block_comments_span_lines() {
        let f = scan_text("s.rs", "/* a\nunsafe\n*/ fn ok() {}\n");
        assert!(!f.code.join("\n").contains("unsafe"));
        assert_eq!(f.fns.len(), 1);
    }

    #[test]
    fn raw_strings_are_stripped() {
        let code = strip_comments_and_strings("let x = r#\"unsafe \"# ; fn f() {}");
        assert!(!code[0].contains("unsafe"));
        assert!(code[0].contains("fn f()"));
    }

    #[test]
    fn find_token_respects_identifier_boundaries() {
        assert!(find_token("pub fn alloc()", "fn").is_some());
        assert!(find_token("fn_name()", "fn").is_none());
        assert!(find_token("dyn_fn()", "fn").is_none());
        assert_eq!(find_token("unsafe {", "unsafe"), Some(0));
    }

    #[test]
    fn trait_method_declarations_have_no_span() {
        let f = scan_text("s.rs", "trait T {\n    fn decl(&self) -> usize;\n}\n");
        assert!(f.fns.is_empty(), "{:?}", f.fns);
    }

    #[test]
    fn char_literals_do_not_open_strings() {
        let code = strip_comments_and_strings("let c = '\"'; let d = unsafe_marker;");
        assert!(code[0].contains("unsafe_marker"));
    }
}
