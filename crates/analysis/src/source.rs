//! Lexical Rust source scanning: the substrate every audit pass runs on.
//!
//! The scanner itself (comment/string stripping, `fn` span recovery,
//! content hashing) lives in [`tt_contracts::span`] so that the incremental
//! verifier and the audit passes share one span/hash layer — a cached
//! verdict and an audit finding must agree on what "this function's text"
//! means. This module re-exports those types and adds the filesystem side:
//! loading files and walking the audited workspace source set.

use std::fs;
use std::path::{Path, PathBuf};

pub use tt_contracts::span::{
    find_token, scan_text, strip_comments_and_strings, FnSpan, ScannedFile, SourceIndex, Span,
};

/// Loads and scans one file, returning `None` on read failure.
pub fn scan_file(root: &Path, path: &Path) -> Option<ScannedFile> {
    let text = fs::read_to_string(path).ok()?;
    let rel = path
        .strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/");
    Some(scan_text(&rel, &text))
}

/// Walks the audited source set: `crates/*/src/**/*.rs` plus the top-level
/// `src/`. Vendored shims, `tests/`, `benches/`, `examples/` and build
/// output are outside the audit (they are not kernel code).
pub fn workspace_sources(root: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let crates = root.join("crates");
    if let Ok(entries) = fs::read_dir(&crates) {
        let mut dirs: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
        dirs.sort();
        for d in dirs {
            collect_rs(&d.join("src"), &mut out);
        }
    }
    collect_rs(&root.join("src"), &mut out);
    out.sort();
    out
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    let mut paths: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
    paths.sort();
    for p in paths {
        if p.is_dir() {
            collect_rs(&p, out);
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workspace_walk_finds_kernel_sources_sorted() {
        let root = crate::audit::workspace_root();
        let paths = workspace_sources(&root);
        assert!(paths.iter().any(|p| p.ends_with("src/machine.rs")));
        assert!(paths
            .iter()
            .all(|p| p.extension().is_some_and(|e| e == "rs")));
        let mut sorted = paths.clone();
        sorted.sort();
        assert_eq!(paths, sorted);
        // Vendored shims are outside the audit.
        assert!(paths
            .iter()
            .all(|p| !p.to_string_lossy().contains("shims/")));
    }

    #[test]
    fn scan_file_produces_workspace_relative_paths() {
        let root = crate::audit::workspace_root();
        let path = root.join("crates/contracts/src/lib.rs");
        let f = scan_file(&root, &path).expect("readable");
        assert_eq!(f.rel_path, "crates/contracts/src/lib.rs");
        assert!(!f.fns.is_empty());
    }
}
