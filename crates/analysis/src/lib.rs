//! `tt-analysis`: source-level static isolation auditing for the TickTock
//! reproduction (the `tt-audit` binary).
//!
//! The paper's isolation argument rests on a *small, declared* trusted
//! computing base: Flux checks everything outside it, and the trusted
//! remainder is listed so reviewers can audit it (§5, Fig. 10). In this
//! reproduction the checking is done by the runtime contract engine — so
//! nothing, until this crate, enforced that the trusted surface stays
//! declared. `tt-audit` closes the loop with three passes over the
//! workspace sources:
//!
//! 1. **TCB audit** ([`tcb`]) — `unsafe`, raw MPU/PMP register stores and
//!    raw-pointer (DMA) operations must fall inside the allowlist in
//!    `ci/tcb_allowlist.toml`; anything else is an error with a
//!    `file:line` span.
//! 2. **Invariant-coverage lint** ([`coverage`]) — every public mutator of
//!    the invariant-bearing structures (`AppBreaks`,
//!    `AppMemoryAllocator`, `RArray`) must discharge `check_invariants()`
//!    on all success paths, or carry a `// TRUSTED:` annotation.
//! 3. **Obligation cross-check** ([`crosscheck`]) — the contract sites in
//!    source and the obligations registered in the `tt-contracts`
//!    [`Registry`](tt_contracts::obligation::Registry) must agree:
//!    unregistered sites and dead obligations both fail the audit.
//! 4. **Allowlist staleness lint** ([`staleness`]) — allowlist entries
//!    whose target no longer exists or no longer contains the declared
//!    construct are flagged, with a `--fix`-style removal listing.
//!
//! The first three passes run incrementally through the shared verdict
//! cache ([`tt_contracts::vcache`], `ci/audit_cache.bin`): unchanged
//! files are skipped on warm runs ([`audit::run_cached`]). The staleness
//! pass is never cached.
//!
//! The audit also *generates* the Fig. 10 proof-effort table (now with a
//! trusted-LOC column) as `BENCH_fig10.json` ([`report`]), which
//! `tt-bench` consumes instead of maintaining its own counts. `tt-audit
//! --check` is a tier-1 CI gate.

#![warn(missing_docs)]

pub mod audit;
pub mod config;
pub mod coverage;
pub mod crosscheck;
pub mod findings;
pub mod report;
pub mod source;
pub mod staleness;
pub mod tcb;

pub use audit::{
    load_workspace, run, run_cached, run_passes, workspace_root, DEFAULT_AUDIT_CACHE,
    DEFAULT_CONFIG,
};
pub use config::AuditConfig;
pub use findings::{Finding, Pass};
pub use report::{to_json, AuditReport, CacheStats, ComponentRow};
pub use staleness::StaleEntry;
