//! The audit configuration: `ci/tcb_allowlist.toml`.
//!
//! The allowlist is the machine-readable trusted-computing-base
//! declaration — the paper's §5 `#[trusted]` boundary as a reviewable
//! artifact. The parser covers the TOML subset the file uses (sections,
//! string values, possibly-multiline string arrays, `#` comments); the
//! build is dependency-frozen, so no external TOML crate.
//!
//! Format:
//!
//! ```toml
//! [tcb]
//! # Whole files (the simulated register files) or single functions
//! # ("path::fn_name", the driver commit paths).
//! trusted = [
//!     "crates/hw/src/cortexm/mpu.rs",
//!     "crates/core/src/cortexm.rs::configure_mpu",
//! ]
//!
//! [coverage]
//! files = ["crates/core/src/breaks.rs"]
//!
//! [crosscheck]
//! allow_unregistered = ["svc_handler_to_process_buggy"]
//! allow_dead = []
//! ```

use std::collections::BTreeMap;
use std::fs;
use std::path::Path;

/// Parsed audit configuration.
#[derive(Debug, Clone, Default)]
pub struct AuditConfig {
    /// `[tcb] trusted`: file paths, directory prefixes, or `path::fn`
    /// entries inside which unsafe code and raw register stores may live.
    pub trusted: Vec<String>,
    /// `[coverage] files`: the invariant-bearing modules whose public
    /// mutators must discharge `check_invariants()`.
    pub coverage_files: Vec<String>,
    /// `[crosscheck] allow_unregistered`: contract sites exempt from the
    /// registry cross-check (deliberately-buggy reproductions checked by
    /// the differential rig instead of the verifier).
    pub allow_unregistered: Vec<String>,
    /// `[crosscheck] allow_dead`: registered obligations exempt from the
    /// dead-obligation check.
    pub allow_dead: Vec<String>,
}

/// A parse failure with its line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    /// 1-based line of the offending construct.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "allowlist line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ConfigError {}

/// Parses the TOML subset into section → key → string-list form.
fn parse_sections(
    text: &str,
) -> Result<BTreeMap<String, BTreeMap<String, Vec<String>>>, ConfigError> {
    let mut sections: BTreeMap<String, BTreeMap<String, Vec<String>>> = BTreeMap::new();
    let mut current = String::new();
    let mut lines = text.lines().enumerate().peekable();
    while let Some((idx, line)) = lines.next() {
        let line = strip_toml_comment(line);
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        if let Some(name) = trimmed.strip_prefix('[').and_then(|s| s.strip_suffix(']')) {
            current = name.trim().to_string();
            sections.entry(current.clone()).or_default();
            continue;
        }
        let Some((key, value)) = trimmed.split_once('=') else {
            return Err(ConfigError {
                line: idx + 1,
                message: format!("expected `key = value` or `[section]`, got `{trimmed}`"),
            });
        };
        let key = key.trim().to_string();
        let mut value = value.trim().to_string();
        // Multiline arrays: accumulate until the closing bracket.
        if value.starts_with('[') && !value.ends_with(']') {
            for (_, cont) in lines.by_ref() {
                let cont = strip_toml_comment(cont);
                value.push(' ');
                value.push_str(cont.trim());
                if cont.trim_end().ends_with(']') {
                    break;
                }
            }
        }
        let items = if let Some(inner) = value.strip_prefix('[') {
            let inner = inner.strip_suffix(']').ok_or(ConfigError {
                line: idx + 1,
                message: "unterminated array".into(),
            })?;
            parse_string_list(inner, idx + 1)?
        } else {
            vec![parse_string(&value, idx + 1)?]
        };
        sections
            .entry(current.clone())
            .or_default()
            .insert(key, items);
    }
    Ok(sections)
}

fn strip_toml_comment(line: &str) -> String {
    // `#` starts a comment unless inside a quoted string.
    let mut out = String::new();
    let mut in_str = false;
    for c in line.chars() {
        match c {
            '"' => {
                in_str = !in_str;
                out.push(c);
            }
            '#' if !in_str => break,
            _ => out.push(c),
        }
    }
    out
}

fn parse_string(s: &str, line: usize) -> Result<String, ConfigError> {
    let t = s.trim().trim_end_matches(',').trim();
    t.strip_prefix('"')
        .and_then(|x| x.strip_suffix('"'))
        .map(str::to_string)
        .ok_or(ConfigError {
            line,
            message: format!("expected a quoted string, got `{t}`"),
        })
}

fn parse_string_list(inner: &str, line: usize) -> Result<Vec<String>, ConfigError> {
    inner
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(|item| parse_string(item, line))
        .collect()
}

impl AuditConfig {
    /// Parses a configuration from TOML text.
    pub fn parse(text: &str) -> Result<Self, ConfigError> {
        let sections = parse_sections(text)?;
        let get = |section: &str, key: &str| -> Vec<String> {
            sections
                .get(section)
                .and_then(|s| s.get(key))
                .cloned()
                .unwrap_or_default()
        };
        Ok(Self {
            trusted: get("tcb", "trusted"),
            coverage_files: get("coverage", "files"),
            allow_unregistered: get("crosscheck", "allow_unregistered"),
            allow_dead: get("crosscheck", "allow_dead"),
        })
    }

    /// Loads and parses the configuration file.
    pub fn load(path: &Path) -> Result<Self, ConfigError> {
        let text = fs::read_to_string(path).map_err(|e| ConfigError {
            line: 0,
            message: format!("cannot read {}: {e}", path.display()),
        })?;
        Self::parse(&text)
    }

    /// Whether `rel_path` (optionally narrowed to the function `fn_name`)
    /// falls inside the declared trusted computing base.
    pub fn is_trusted(&self, rel_path: &str, fn_name: Option<&str>) -> bool {
        self.trusted.iter().any(|entry| {
            if let Some((path, func)) = entry.split_once("::") {
                path == rel_path && fn_name == Some(func)
            } else {
                rel_path == entry
                    || rel_path.starts_with(&format!("{}/", entry.trim_end_matches('/')))
            }
        })
    }

    /// Whether the whole file is trusted (no function qualifier needed).
    pub fn is_trusted_file(&self, rel_path: &str) -> bool {
        self.trusted.iter().any(|entry| {
            !entry.contains("::")
                && (rel_path == entry
                    || rel_path.starts_with(&format!("{}/", entry.trim_end_matches('/'))))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r##"
# The TCB declaration.
[tcb]
trusted = [
    "crates/hw/src/cortexm/mpu.rs",          # register file
    "crates/core/src/cortexm.rs::configure_mpu",
    "crates/hw/src/riscv",
]

[coverage]
files = ["crates/core/src/breaks.rs", "crates/core/src/allocator.rs"]

[crosscheck]
allow_unregistered = ["sys_tick_isr_buggy"]
allow_dead = []
"##;

    #[test]
    fn parses_multiline_arrays_with_comments() {
        let c = AuditConfig::parse(SAMPLE).unwrap();
        assert_eq!(c.trusted.len(), 3);
        assert_eq!(c.coverage_files.len(), 2);
        assert_eq!(c.allow_unregistered, vec!["sys_tick_isr_buggy"]);
        assert!(c.allow_dead.is_empty());
    }

    #[test]
    fn trusted_matches_files_functions_and_dir_prefixes() {
        let c = AuditConfig::parse(SAMPLE).unwrap();
        assert!(c.is_trusted("crates/hw/src/cortexm/mpu.rs", None));
        assert!(c.is_trusted("crates/hw/src/cortexm/mpu.rs", Some("anything")));
        assert!(c.is_trusted("crates/core/src/cortexm.rs", Some("configure_mpu")));
        assert!(!c.is_trusted("crates/core/src/cortexm.rs", Some("choose_geometry")));
        assert!(!c.is_trusted("crates/core/src/cortexm.rs", None));
        assert!(c.is_trusted("crates/hw/src/riscv/pmp.rs", None));
        assert!(!c.is_trusted("crates/hw/src/riscv2/pmp.rs", None));
    }

    #[test]
    fn file_level_trust_is_distinct_from_fn_level() {
        let c = AuditConfig::parse(SAMPLE).unwrap();
        assert!(c.is_trusted_file("crates/hw/src/cortexm/mpu.rs"));
        assert!(!c.is_trusted_file("crates/core/src/cortexm.rs"));
    }

    #[test]
    fn rejects_malformed_lines() {
        let err = AuditConfig::parse("[tcb]\nnonsense without equals\n").unwrap_err();
        assert_eq!(err.line, 2);
        let err = AuditConfig::parse("[tcb]\ntrusted = [\"a\"").unwrap_err();
        assert!(err.message.contains("unterminated"));
    }

    #[test]
    fn missing_sections_default_to_empty() {
        let c = AuditConfig::parse("").unwrap();
        assert!(c.trusted.is_empty() && c.coverage_files.is_empty());
    }
}
