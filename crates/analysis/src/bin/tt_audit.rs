//! `tt-audit` — the workspace static isolation auditor.
//!
//! ```text
//! tt-audit [--check] [--root DIR] [--config FILE] [--json FILE]
//!          [--pass tcb,coverage,crosscheck,staleness]
//!          [--cold] [--no-cache] [--cache FILE]
//! ```
//!
//! Runs the TCB audit, the invariant-coverage lint, the obligation
//! cross-check and the allowlist staleness lint over the workspace
//! sources, prints the Fig. 10 table, and (with `--json`) writes the
//! `BENCH_fig10.json` artifact. With `--check` the process exits nonzero
//! if any pass produced findings — the CI gate.
//!
//! By default the cacheable passes run incrementally against
//! `ci/audit_cache.bin`: a warm re-run on an unchanged tree skips every
//! per-file verdict. `--cold` discards the cache first; `--no-cache`
//! disables caching entirely. Stale allowlist entries are printed as a
//! ready-to-apply removal listing.

use std::path::PathBuf;
use std::process::ExitCode;

use tt_analysis::{AuditConfig, Pass};

struct Args {
    check: bool,
    root: PathBuf,
    config: PathBuf,
    json: Option<PathBuf>,
    passes: Vec<Pass>,
    cold: bool,
    no_cache: bool,
    cache: Option<PathBuf>,
}

fn parse_passes(spec: &str) -> Result<Vec<Pass>, String> {
    spec.split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(|s| match s {
            "tcb" => Ok(Pass::Tcb),
            "coverage" => Ok(Pass::Coverage),
            "crosscheck" => Ok(Pass::Crosscheck),
            "staleness" => Ok(Pass::Staleness),
            other => Err(format!(
                "unknown pass `{other}` (expected tcb, coverage, crosscheck, staleness)"
            )),
        })
        .collect()
}

fn parse_args() -> Result<Args, String> {
    let root = tt_analysis::workspace_root();
    let mut args = Args {
        check: false,
        config: root.join(tt_analysis::DEFAULT_CONFIG),
        root,
        json: None,
        passes: vec![Pass::Tcb, Pass::Coverage, Pass::Crosscheck, Pass::Staleness],
        cold: false,
        no_cache: false,
        cache: None,
    };
    let mut config_overridden = false;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match arg.as_str() {
            "--check" => args.check = true,
            "--root" => {
                args.root = PathBuf::from(value("--root")?);
                if !config_overridden {
                    args.config = args.root.join(tt_analysis::DEFAULT_CONFIG);
                }
            }
            "--config" => {
                args.config = PathBuf::from(value("--config")?);
                config_overridden = true;
            }
            "--json" => args.json = Some(PathBuf::from(value("--json")?)),
            "--pass" => args.passes = parse_passes(&value("--pass")?)?,
            "--cold" => args.cold = true,
            "--no-cache" => args.no_cache = true,
            "--cache" => args.cache = Some(PathBuf::from(value("--cache")?)),
            "--help" | "-h" => {
                println!(
                    "tt-audit [--check] [--root DIR] [--config FILE] [--json FILE] \
                     [--pass tcb,coverage,crosscheck,staleness] \
                     [--cold] [--no-cache] [--cache FILE]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("tt-audit: {e}");
            return ExitCode::from(2);
        }
    };
    let config = match AuditConfig::load(&args.config) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("tt-audit: {}: {e}", args.config.display());
            return ExitCode::from(2);
        }
    };

    let report = if args.no_cache {
        tt_analysis::run(&args.root, &config, &args.passes)
    } else {
        let cache = args
            .cache
            .clone()
            .unwrap_or_else(|| args.root.join(tt_analysis::DEFAULT_AUDIT_CACHE));
        let cache = if cache.is_absolute() {
            cache
        } else {
            args.root.join(cache)
        };
        tt_analysis::run_cached(&args.root, &config, &args.passes, &cache, args.cold)
    };

    for finding in &report.findings {
        eprintln!("{finding}");
    }
    if !report.stale_entries.is_empty() {
        eprintln!(
            "fix: remove these stale entries from {}:",
            args.config.display()
        );
        for e in &report.stale_entries {
            eprintln!("  - \"{}\"   # {}: {}", e.entry, e.section, e.reason);
        }
    }
    print!("{}", tt_analysis::report::render_table(&report));
    println!(
        "audit: {} finding(s) (tcb {}, coverage {}, crosscheck {}, staleness {})",
        report.findings.len(),
        report.count(Pass::Tcb),
        report.count(Pass::Coverage),
        report.count(Pass::Crosscheck),
        report.count(Pass::Staleness),
    );
    if let Some(c) = &report.cache {
        if let Some(err) = &c.corrupt {
            eprintln!("warning: audit cache was corrupt ({err}); ran cold, never partial reuse");
        }
        println!(
            "cache: {} run, hit rate {:.1}%, wall {:.1} ms (cold {:.1} ms), \
             skipped tcb {}, coverage {}, crosscheck {}",
            if c.warm { "warm" } else { "cold" },
            c.hit_rate * 100.0,
            c.wall_ms,
            c.cold_wall_ms,
            c.skipped_tcb,
            c.skipped_coverage,
            c.skipped_crosscheck,
        );
    }

    if let Some(path) = &args.json {
        let doc = tt_analysis::to_json(&report);
        if let Err(e) = std::fs::write(path, doc) {
            eprintln!("tt-audit: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
        println!("wrote {}", path.display());
    }

    if args.check && !report.clean() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
