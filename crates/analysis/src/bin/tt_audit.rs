//! `tt-audit` — the workspace static isolation auditor.
//!
//! ```text
//! tt-audit [--check] [--root DIR] [--config FILE] [--json FILE]
//!          [--pass tcb,coverage,crosscheck]
//! ```
//!
//! Runs the TCB audit, the invariant-coverage lint and the obligation
//! cross-check over the workspace sources, prints the Fig. 10 table, and
//! (with `--json`) writes the `BENCH_fig10.json` artifact. With `--check`
//! the process exits nonzero if any pass produced findings — the CI gate.

use std::path::PathBuf;
use std::process::ExitCode;

use tt_analysis::{AuditConfig, Pass};

struct Args {
    check: bool,
    root: PathBuf,
    config: PathBuf,
    json: Option<PathBuf>,
    passes: Vec<Pass>,
}

fn parse_passes(spec: &str) -> Result<Vec<Pass>, String> {
    spec.split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(|s| match s {
            "tcb" => Ok(Pass::Tcb),
            "coverage" => Ok(Pass::Coverage),
            "crosscheck" => Ok(Pass::Crosscheck),
            other => Err(format!(
                "unknown pass `{other}` (expected tcb, coverage, crosscheck)"
            )),
        })
        .collect()
}

fn parse_args() -> Result<Args, String> {
    let root = tt_analysis::workspace_root();
    let mut args = Args {
        check: false,
        config: root.join(tt_analysis::DEFAULT_CONFIG),
        root,
        json: None,
        passes: vec![Pass::Tcb, Pass::Coverage, Pass::Crosscheck],
    };
    let mut config_overridden = false;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match arg.as_str() {
            "--check" => args.check = true,
            "--root" => {
                args.root = PathBuf::from(value("--root")?);
                if !config_overridden {
                    args.config = args.root.join(tt_analysis::DEFAULT_CONFIG);
                }
            }
            "--config" => {
                args.config = PathBuf::from(value("--config")?);
                config_overridden = true;
            }
            "--json" => args.json = Some(PathBuf::from(value("--json")?)),
            "--pass" => args.passes = parse_passes(&value("--pass")?)?,
            "--help" | "-h" => {
                println!(
                    "tt-audit [--check] [--root DIR] [--config FILE] [--json FILE] \
                     [--pass tcb,coverage,crosscheck]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("tt-audit: {e}");
            return ExitCode::from(2);
        }
    };
    let config = match AuditConfig::load(&args.config) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("tt-audit: {}: {e}", args.config.display());
            return ExitCode::from(2);
        }
    };

    let report = tt_analysis::run(&args.root, &config, &args.passes);

    for finding in &report.findings {
        eprintln!("{finding}");
    }
    print!("{}", tt_analysis::report::render_table(&report));
    println!(
        "audit: {} finding(s) (tcb {}, coverage {}, crosscheck {})",
        report.findings.len(),
        report.count(Pass::Tcb),
        report.count(Pass::Coverage),
        report.count(Pass::Crosscheck),
    );

    if let Some(path) = &args.json {
        let doc = tt_analysis::to_json(&report);
        if let Err(e) = std::fs::write(path, doc) {
            eprintln!("tt-audit: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
        println!("wrote {}", path.display());
    }

    if args.check && !report.clean() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
