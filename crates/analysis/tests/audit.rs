//! End-to-end tests of the `tt-audit` binary: the shipped tree gates
//! green, and a seeded violation in each pass gates red with a
//! `file:line` diagnostic.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn tt_audit() -> Command {
    Command::new(env!("CARGO_BIN_EXE_tt-audit"))
}

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("workspace root")
        .to_path_buf()
}

fn stderr_of(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

fn stdout_of(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

/// A throwaway workspace with one crate and a minimal allowlist.
struct TempTree {
    root: PathBuf,
}

impl TempTree {
    fn new(tag: &str) -> TempTree {
        let root = std::env::temp_dir().join(format!("tt-audit-{}-{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&root);
        fs::create_dir_all(root.join("crates/app/src")).unwrap();
        fs::create_dir_all(root.join("ci")).unwrap();
        TempTree { root }
    }

    fn write(&self, rel: &str, text: &str) -> &Self {
        let path = self.root.join(rel);
        fs::create_dir_all(path.parent().unwrap()).unwrap();
        fs::write(path, text).unwrap();
        self
    }

    fn run(&self, extra: &[&str]) -> Output {
        tt_audit()
            .arg("--check")
            .arg("--root")
            .arg(&self.root)
            .args(extra)
            .output()
            .expect("tt-audit runs")
    }
}

impl Drop for TempTree {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.root);
    }
}

const EMPTY_CONFIG: &str = "[tcb]\ntrusted = []\n\n[coverage]\nfiles = []\n";

#[test]
fn shipped_tree_gates_green() {
    let out = tt_audit()
        .arg("--check")
        .current_dir(workspace_root())
        .output()
        .expect("tt-audit runs");
    assert!(
        out.status.success(),
        "audit failed on the shipped tree:\n{}",
        stderr_of(&out)
    );
    let stdout = stdout_of(&out);
    assert!(stdout.contains("audit: 0 finding(s)"), "{stdout}");
    assert!(stdout.contains("Total"), "{stdout}");
}

#[test]
fn json_artifact_is_written_and_well_formed() {
    let path = std::env::temp_dir().join(format!("tt-audit-{}-fig10.json", std::process::id()));
    let _ = fs::remove_file(&path);
    let out = tt_audit()
        .arg("--check")
        .arg("--json")
        .arg(&path)
        .output()
        .expect("tt-audit runs");
    assert!(out.status.success(), "{}", stderr_of(&out));
    let doc = fs::read_to_string(&path).expect("json written");
    let _ = fs::remove_file(&path);
    for needle in [
        "\"bench\": \"fig10_proof_effort\"",
        "\"generator\": \"tt-audit\"",
        "\"components\"",
        "\"trusted_loc\"",
        "\"clean\": true",
    ] {
        assert!(doc.contains(needle), "missing {needle} in:\n{doc}");
    }
}

#[test]
fn seeded_unsafe_block_fails_the_tcb_pass() {
    let tree = TempTree::new("tcb");
    tree.write("ci/tcb_allowlist.toml", EMPTY_CONFIG).write(
        "crates/app/src/lib.rs",
        "pub fn poke(addr: usize) -> u32 {\n    unsafe { core::ptr::read_volatile(addr as *const u32) }\n}\n",
    );
    let out = tree.run(&["--pass", "tcb"]);
    assert!(!out.status.success(), "seeded unsafe gated green");
    let stderr = stderr_of(&out);
    assert!(
        stderr.contains("crates/app/src/lib.rs:2"),
        "no file:line span in:\n{stderr}"
    );
    assert!(stderr.contains("[tcb]"), "{stderr}");
    assert!(stderr.contains("unsafe"), "{stderr}");
}

#[test]
fn allowlisted_unsafe_gates_green() {
    let tree = TempTree::new("tcb-allowed");
    tree.write(
        "ci/tcb_allowlist.toml",
        "[tcb]\ntrusted = [\"crates/app/src/lib.rs\"]\n\n[coverage]\nfiles = []\n",
    )
    .write(
        "crates/app/src/lib.rs",
        "pub fn poke(addr: usize) -> u32 {\n    unsafe { core::ptr::read_volatile(addr as *const u32) }\n}\n",
    );
    let out = tree.run(&["--pass", "tcb"]);
    assert!(
        out.status.success(),
        "allowlisted unsafe still flagged:\n{}",
        stderr_of(&out)
    );
}

#[test]
fn seeded_unchecked_mutator_fails_the_coverage_pass() {
    let tree = TempTree::new("coverage");
    tree.write(
        "ci/tcb_allowlist.toml",
        "[tcb]\ntrusted = []\n\n[coverage]\nfiles = [\"crates/app/src/table.rs\"]\n",
    )
    .write(
        "crates/app/src/table.rs",
        concat!(
            "pub struct Table { len: usize }\n",
            "impl Table {\n",
            "    pub fn grow(&mut self, n: usize) {\n",
            "        self.len = n;\n",
            "    }\n",
            "    pub fn shrink(&mut self, n: usize) {\n",
            "        self.len = n;\n",
            "        self.check_invariants();\n",
            "    }\n",
            "    pub fn check_invariants(&self) {}\n",
            "}\n",
        ),
    );
    let out = tree.run(&["--pass", "coverage"]);
    assert!(!out.status.success(), "unchecked mutator gated green");
    let stderr = stderr_of(&out);
    assert!(stderr.contains("[coverage]"), "{stderr}");
    assert!(stderr.contains("grow"), "{stderr}");
    // The span anchors at the undischarged exit (the closing brace).
    assert!(
        stderr.contains("crates/app/src/table.rs:5"),
        "no file:line span in:\n{stderr}"
    );
    // The discharging mutator next door is not flagged.
    assert!(!stderr.contains("shrink"), "{stderr}");
}

#[test]
fn seeded_unregistered_contract_site_fails_the_crosscheck_pass() {
    let tree = TempTree::new("crosscheck");
    tree.write("ci/tcb_allowlist.toml", EMPTY_CONFIG).write(
        "crates/app/src/lib.rs",
        concat!(
            "pub fn commit(&mut self) {\n",
            "    tt_contracts::invariant!(\"Phantom::commit\", true);\n",
            "}\n",
        ),
    );
    let out = tree.run(&["--pass", "crosscheck"]);
    assert!(!out.status.success(), "unregistered site gated green");
    let stderr = stderr_of(&out);
    assert!(stderr.contains("[crosscheck]"), "{stderr}");
    assert!(stderr.contains("Phantom::commit"), "{stderr}");
    assert!(
        stderr.contains("crates/app/src/lib.rs:2"),
        "no file:line span in:\n{stderr}"
    );
}

#[test]
fn unknown_pass_and_missing_config_exit_2() {
    let out = tt_audit().args(["--pass", "nonsense"]).output().unwrap();
    assert_eq!(out.status.code(), Some(2), "{}", stderr_of(&out));
    assert!(stderr_of(&out).contains("unknown pass"));

    let missing = Path::new("/nonexistent/allowlist.toml");
    let out = tt_audit()
        .args(["--config", missing.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2), "{}", stderr_of(&out));
}
