//! Umbrella crate for the TickTock reproduction.
//!
//! Re-exports the workspace crates so examples and integration tests can use
//! a single dependency. See `DESIGN.md` for the system inventory and
//! `EXPERIMENTS.md` for the paper-vs-measured results.

pub use ticktock;
pub use tt_contracts as contracts;
pub use tt_fluxarm as fluxarm;
pub use tt_hw as hw;
pub use tt_kernel as kernel;
pub use tt_legacy as legacy;
